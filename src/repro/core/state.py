"""The state hierarchy model (§3.1).

SDNFV classifies middlebox state along two axes following Split/Merge:
internal (NF-specific or host-specific) versus external (partitioned or
coherent), and assigns each kind to the tier that can gather it most
cheaply.  :func:`classify_state` encodes the §3.1 decision table;
:class:`HierarchySnapshot` gathers one consistent cross-tier view — the
coarse-grained global picture the SDNFV Application works from.
"""

from __future__ import annotations

import dataclasses
import enum
import typing

from repro.control.controller import ControllerStats

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.app import SdnfvApp


class StateTier(enum.Enum):
    """Where a piece of state lives in the SDNFV hierarchy."""

    NF = "nf"                      # inside one network function
    NF_MANAGER = "nf_manager"      # per-host
    SDNFV_APP = "sdnfv_app"        # global


class StateKind(enum.Enum):
    """Split/Merge-style classification of middlebox state."""

    NF_INTERNAL = "nf_internal"           # app logic, caches
    HOST_INTERNAL = "host_internal"       # queue occupancy, NF list
    EXTERNAL_PARTITIONED = "external_partitioned"  # per-NF protocol state
    EXTERNAL_COHERENT = "external_coherent"        # must be consistent


_PLACEMENT = {
    StateKind.NF_INTERNAL: StateTier.NF,
    StateKind.HOST_INTERNAL: StateTier.NF_MANAGER,
    StateKind.EXTERNAL_PARTITIONED: StateTier.NF,
    StateKind.EXTERNAL_COHERENT: StateTier.SDNFV_APP,
}


def classify_state(internal: bool, host_scoped: bool = False,
                   coherent: bool = False) -> tuple[StateKind, StateTier]:
    """Classify a piece of state and name the tier that should hold it.

    ``internal`` state never influences routing outside its owner;
    ``host_scoped`` internal state (queue lengths, NF lists) belongs to
    the NF Manager; external state is ``coherent`` when it must stay
    consistent across NF instances (then only the global tier can own it).
    """
    if internal:
        kind = (StateKind.HOST_INTERNAL if host_scoped
                else StateKind.NF_INTERNAL)
    else:
        kind = (StateKind.EXTERNAL_COHERENT if coherent
                else StateKind.EXTERNAL_PARTITIONED)
    return kind, _PLACEMENT[kind]


@dataclasses.dataclass
class HostView:
    """What the global tier sees of one host."""

    name: str
    services: list[str]
    queue_depths: dict[str, int]
    stats: dict[str, int]
    flow_table_size: int


@dataclasses.dataclass
class HierarchySnapshot:
    """A coarse-grained, point-in-time view across all three tiers."""

    taken_at_ns: int
    hosts: dict[str, HostView]
    controller: ControllerStats | None
    deployments: list[str]

    @classmethod
    def gather(cls, app: SdnfvApp) -> HierarchySnapshot:
        hosts = {}
        for name, host in app.hosts.items():
            manager = host.manager
            hosts[name] = HostView(
                name=name,
                services=manager.services(),
                queue_depths=manager.service_queue_depths(),
                stats=manager.stats.summary(),
                flow_table_size=len(manager.flow_table),
            )
        controller = (app.controller.stats if app.controller is not None
                      else None)
        return cls(
            taken_at_ns=app.sim.now,
            hosts=hosts,
            controller=controller,
            deployments=[deployment.graph.name
                         for deployment in app.deployments],
        )

    def total_packets(self) -> tuple[int, int]:
        """(rx, tx) packets across all hosts."""
        rx = sum(view.stats["rx_packets"] for view in self.hosts.values())
        tx = sum(view.stats["tx_packets"] for view in self.hosts.values())
        return rx, tx

    def format(self) -> str:
        """Operator-readable summary of the whole hierarchy."""
        from repro.sim.units import S
        lines = [f"=== hierarchy snapshot @ {self.taken_at_ns / S:.3f}s ==="]
        if self.deployments:
            lines.append(f"deployments: {', '.join(self.deployments)}")
        for name in sorted(self.hosts):
            view = self.hosts[name]
            stats = view.stats
            lines.append(
                f"  {name}: rx={stats['rx_packets']} "
                f"tx={stats['tx_packets']} "
                f"drops={stats['dropped_by_nf'] + stats['dropped_ring_full'] + stats['dropped_no_rule'] + stats['dropped_no_vm']} "
                f"rules={view.flow_table_size}")
            for service in sorted(view.services):
                depth = view.queue_depths.get(service, 0)
                lines.append(f"    svc {service}: queue={depth}")
        if self.controller is not None:
            lines.append(f"  controller: requests="
                         f"{self.controller.requests} "
                         f"max_queue={self.controller.max_queue}")
        return "\n".join(lines)
