"""One-call distributed deployment of a service graph over a network.

``deploy_distributed`` takes a built network (hosts + fabric + topology),
a service graph, and a service→host placement, and installs *everything*
the chain needs to run:

- per-service rules on the hosts that own them,
- the ingress rule on the entry service's host,
- arrival rules where cross-host edges land (scoped to the trunk port
  facing the upstream hop),
- transit rules on intermediate hosts when placed hosts are not adjacent.

Cross-host edges compile into next-hop trunk forwards; packets exit via
``exit_port`` on whichever host the terminating service runs.
"""

from __future__ import annotations

import typing

from repro.core.app import GraphDeployment, SdnfvApp
from repro.core.service_graph import DROP, EXIT, ServiceGraph
from repro.dataplane.actions import Destination, Drop, ToPort, ToService
from repro.dataplane.flow_table import FlowTableEntry
from repro.net.flow import FlowMatch
from repro.topology.builder import BuiltNetwork


class DistributedDeploymentError(Exception):
    """The graph/placement combination cannot be expressed on this
    network (e.g. two different services would share an arrival port)."""


def deploy_distributed(app: SdnfvApp, network: BuiltNetwork,
                       graph: ServiceGraph,
                       placement: typing.Mapping[str, str],
                       match: FlowMatch | None = None,
                       ingress_port: str = "eth0",
                       exit_port: str = "eth1",
                       priority: int = 0) -> GraphDeployment:
    """Install a placed service graph across the network's hosts."""
    graph.validate()
    match = match or FlowMatch.any()
    for service in graph.services:
        if service not in placement:
            raise DistributedDeploymentError(
                f"service {service!r} has no placement")
        if placement[service] not in network.hosts:
            raise DistributedDeploymentError(
                f"{service!r} placed on unknown host "
                f"{placement[service]!r}")

    rules: dict[str, list[FlowTableEntry]] = {
        name: [] for name in network.hosts}
    # (host, arrival_port) -> service, to detect conflicts.
    arrivals: dict[tuple[str, str], str] = {}

    def port_toward(src_host: str, dst_host: str) -> str:
        return network.inter_host_ports[(src_host, dst_host)]

    def arrival_port(dst_host: str, src_host: str) -> str:
        path = network.topology.shortest_path(src_host, dst_host)
        return f"to-{path[-2]}"

    def resolve(src_service: str, dst: str) -> Destination:
        if dst == EXIT:
            return ToPort(exit_port)
        if dst == DROP:
            return Drop()
        src_host = placement[src_service]
        dst_host = placement[dst]
        if src_host == dst_host:
            return ToService(dst)
        return ToPort(port_toward(src_host, dst_host))

    # Ingress rule on the entry host.
    entry_host = placement[graph.entry]
    rules[entry_host].append(FlowTableEntry(
        scope=ingress_port, match=match,
        actions=(ToService(graph.entry),), priority=priority))

    for service in graph.services:
        host_name = placement[service]
        actions = tuple(resolve(service, edge.dst)
                        for edge in graph.out_edges(service))
        rules[host_name].append(FlowTableEntry(
            scope=service, match=match, actions=actions,
            priority=priority))
        # Cross-host edges into this service need arrival + transit.
        for upstream in graph.predecessors(service):
            upstream_host = placement[upstream]
            if upstream_host == host_name:
                continue
            network.install_transit(match, upstream_host, host_name)
            port = arrival_port(host_name, upstream_host)
            key = (host_name, port)
            existing = arrivals.get(key)
            if existing is None:
                arrivals[key] = service
                rules[host_name].append(FlowTableEntry(
                    scope=port, match=match,
                    actions=(ToService(service),), priority=priority))
            elif existing != service:
                raise DistributedDeploymentError(
                    f"services {existing!r} and {service!r} would share "
                    f"arrival port {port!r} on {host_name!r} for the "
                    "same match; refine the match or the placement")

    for host_name, host_rules in rules.items():
        if host_rules:
            network.hosts[host_name].install_rules(host_rules)

    # Register read-only parallel chains on hosts that own whole chains.
    for chain in graph.parallel_chains():
        chain_hosts = {placement[service] for service in chain}
        if len(chain_hosts) == 1:
            host = network.hosts[chain_hosts.pop()]
            host.manager.register_parallel_chain(chain)

    deployment = GraphDeployment(
        graph=graph, match=match, ingress_port=ingress_port,
        exit_port=exit_port, placement=dict(placement),
        inter_host_ports=dict(network.inter_host_ports),
        priority=priority)
    app.deployments.append(deployment)
    if app.event_log is not None:
        app.event_log.record("deploy_distributed", graph=graph.name,
                             hosts=len({placement[s]
                                        for s in graph.services}))
    return deployment
