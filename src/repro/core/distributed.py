"""Deprecated shim: ``deploy_distributed`` is now ``SdnfvApp.deploy``.

The one-call distributed deployment helper was folded into the unified
entry point — pass the built network to :meth:`repro.core.app.SdnfvApp.
deploy` instead::

    app.deploy(graph, placement=placement, network=network)

This module keeps the old callable (it warns once and delegates) and
re-exports :class:`DistributedDeploymentError` from its new home in
:mod:`repro.core.deploy_rules`.
"""

from __future__ import annotations

import typing
import warnings

from repro.core.app import GraphDeployment, SdnfvApp
from repro.core.deploy_rules import DistributedDeploymentError  # noqa: F401
from repro.core.service_graph import ServiceGraph
from repro.net.flow import FlowMatch
from repro.topology.builder import BuiltNetwork


def deploy_distributed(app: SdnfvApp, network: BuiltNetwork,
                       graph: ServiceGraph,
                       placement: typing.Mapping[str, str],
                       match: FlowMatch | None = None,
                       ingress_port: str = "eth0",
                       exit_port: str = "eth1",
                       priority: int = 0) -> GraphDeployment:
    """Install a placed service graph across the network's hosts.

    .. deprecated::
        Use ``app.deploy(graph, placement=..., network=...)``.
    """
    warnings.warn(
        "deploy_distributed() is deprecated; use "
        "SdnfvApp.deploy(graph, placement=..., network=...)",
        DeprecationWarning, stacklevel=2)
    return app.deploy(graph, ingress_port=ingress_port,
                      exit_port=exit_port, match=match,
                      placement=dict(placement), network=network,
                      priority=priority)
