"""The SDNFV Application: the global tier of the control hierarchy (§3.1).

It "has purview over the entire network": it holds the service graphs and
placement decisions, feeds flow rules to hosts through the SDN controller
(Fig. 2 steps 1–3), asks the NFV orchestrator to start VMs (step 4), and
validates / acts on cross-layer messages coming up from NFs (step 5).
"""

from __future__ import annotations

import dataclasses
import typing
import warnings

from repro.control.controller import SdnController
from repro.control.orchestrator import NfvOrchestrator
from repro.dataplane.flow_table import FlowTableEntry
from repro.dataplane.host import NfvHost
from repro.dataplane.messages import (
    ChangeDefault,
    NfMessage,
    RequestMe,
    SkipMe,
    UserMessage,
)
from repro.net.flow import FiveTuple, FlowMatch
from repro.core.deploy_rules import (
    DistributedDeploymentError,
    compile_distributed_rules,
    compile_proactive_rules,
)
from repro.core.service_graph import EXIT, ServiceGraph
from repro.sim.events import Event
from repro.sim.simulator import Simulator

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.watchdog import NfWatchdog


def _canonical_mode(mode: str | None,
                    launch_mode: str | None) -> str | None:
    """Resolve the ``mode=`` / deprecated ``launch_mode=`` kwarg pair."""
    if launch_mode is None:
        return mode
    if mode is not None:
        raise TypeError("pass mode= only (launch_mode= is a deprecated "
                        "alias)")
    warnings.warn("launch_mode= is deprecated; use mode=",
                  DeprecationWarning, stacklevel=3)
    return launch_mode


@dataclasses.dataclass
class GraphDeployment:
    """One service graph instantiated in the network."""

    graph: ServiceGraph
    match: FlowMatch
    ingress_port: str
    exit_port: str
    placement: dict[str, str] | None = None  # service -> host name
    inter_host_ports: dict[tuple[str, str], str] | None = None
    priority: int = 0
    # Routed deployments (deploy(network=...)) remember the topology and
    # the full host universe, so on-demand rules_for can recompile the
    # routed cover (transit + arrival rules included) per host.
    topology: typing.Any = None
    host_names: tuple[str, ...] = ()

    def covers(self, flow: FiveTuple) -> bool:
        return self.match.matches(flow)

    def hosts(self, default_host: str) -> set[str]:
        if self.placement is None:
            return {default_host}
        return set(self.placement.values())


class SdnfvApp:
    """Global policies, graph deployment, and cross-layer coordination."""

    def __init__(self, sim: Simulator,
                 controller: SdnController | None = None,
                 orchestrator: NfvOrchestrator | None = None,
                 validation_latency_ns: int = 0,
                 trust_nfs: bool = True) -> None:
        self.sim = sim
        self.controller = controller
        self.orchestrator = orchestrator
        self.validation_latency_ns = validation_latency_ns
        self.trust_nfs = trust_nfs
        self.hosts: dict[str, NfvHost] = {}
        self.deployments: list[GraphDeployment] = []
        self._message_callbacks: dict[
            str, list[typing.Callable[[str, UserMessage], None]]] = {}
        self.messages_received: list[tuple[str, UserMessage]] = []
        self.rejected_messages: list[tuple[str, NfMessage]] = []
        self.telemetry: list[typing.Any] = []
        # Optional structured observability (repro.metrics.eventlog);
        # attach_event_log propagates it to hosts and the orchestrator.
        self.event_log: typing.Any | None = None
        if controller is not None and controller.northbound is None:
            controller.northbound = self

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def attach_event_log(self, event_log: typing.Any) -> None:
        """Attach one control-event log to the app, every registered
        host, and the orchestrator."""
        self.event_log = event_log
        for host in self.hosts.values():
            host.manager.event_log = event_log
        if self.orchestrator is not None:
            self.orchestrator.event_log = event_log
        if (self.controller is not None
                and hasattr(self.controller, "attach_event_log")):
            self.controller.attach_event_log(event_log)

    # ------------------------------------------------------------------
    # Host / infrastructure registration
    # ------------------------------------------------------------------
    def register_host(self, host: NfvHost) -> None:
        if host.name in self.hosts:
            raise ValueError(f"duplicate host {host.name!r}")
        self.hosts[host.name] = host
        host.manager.user_message_sink = self._handle_user_message
        if not self.trust_nfs:
            host.manager.policy_validator = self
        if self.event_log is not None:
            host.manager.event_log = self.event_log
        if self.orchestrator is not None:
            self.orchestrator.register_host(host)

    # ------------------------------------------------------------------
    # Deployment (Fig. 2 steps 1–4)
    # ------------------------------------------------------------------
    def deploy(self, graph: ServiceGraph,
               ingress_port: str = "eth0", exit_port: str = "eth1",
               match: FlowMatch | None = None,
               placement: dict[str, str] | None = None,
               inter_host_ports: dict[tuple[str, str], str] | None = None,
               proactive: bool = True,
               priority: int = 0,
               auto_parallel: bool = False,
               network: typing.Any = None) -> GraphDeployment:
        """Instantiate a service graph.

        ``proactive=True`` pushes the compiled rules to every involved host
        immediately (pre-populated rules); with ``proactive=False`` rules
        are handed out on demand when hosts report flow-table misses.

        ``auto_parallel=True`` replaces the declared-read-only fusion with
        profile-driven layout synthesis: each host's registered NFs are
        statically analyzed (:mod:`repro.analysis.profiles`) and
        :meth:`ServiceGraph.auto_parallel_layout` fuses every adjacent run
        whose profiles are conflict-free — a superset of the read-only
        chains, with the manager's merge stage reconciling member writes
        in graph order.  Register the NFs (``host.add_nf``) *before*
        deploying: services without a VM yet fall back to the graph's
        declared bit.  The default (False) keeps the legacy behaviour
        bit-for-bit.

        With ``network=`` (a :class:`repro.topology.BuiltNetwork`), the
        deployment is *routed*: transit and arrival rules for non-adjacent
        placements compile from the network's topology, and ``placement``
        is required.  This is the unified successor of the old
        ``deploy_distributed`` helper.
        """
        if network is not None:
            if auto_parallel:
                raise ValueError(
                    "auto_parallel= is not supported with network= "
                    "deployments; register profile-driven chains per "
                    "host instead")
            return self._deploy_on_network(
                graph, network, placement, match=match,
                ingress_port=ingress_port, exit_port=exit_port,
                priority=priority, proactive=proactive)
        graph.validate()
        match = match or FlowMatch.any()
        deployment = GraphDeployment(
            graph=graph, match=match, ingress_port=ingress_port,
            exit_port=exit_port, placement=placement,
            inter_host_ports=inter_host_ports, priority=priority)
        self.deployments.append(deployment)
        if self.event_log is not None:
            self.event_log.record("deploy", graph=graph.name,
                                  proactive=proactive,
                                  services=len(graph.services))
        involved = (set(placement.values()) if placement
                    else set(self.hosts))
        pushes: list[tuple[NfvHost, list[FlowTableEntry]]] = []
        for host_name in involved:
            host = self.hosts[host_name]
            if auto_parallel:
                self._register_auto_parallel(graph, host, host_name,
                                             placement)
            else:
                for chain in graph.parallel_chains():
                    local = [service for service in chain
                             if placement is None
                             or placement[service] == host_name]
                    if len(local) == len(chain):
                        host.manager.register_parallel_chain(chain)
            if proactive:
                rules = [entry for _name, entry in compile_proactive_rules(
                    graph, placement, hosts=(host_name,), match=match,
                    ingress_port=ingress_port, exit_port=exit_port,
                    inter_host_ports=inter_host_ports, priority=priority)]
                pushes.append((host, rules))
        self._install_all(pushes)
        return deployment

    def _register_auto_parallel(self, graph: ServiceGraph, host: NfvHost,
                                host_name: str,
                                placement: dict[str, str] | None) -> None:
        """Profile-driven chain registration for one host.

        Analysis imports stay lazy (same pattern as the ownership
        verifier): a deployment that never opts in never loads the
        analysis package.
        """
        from repro.analysis.profiles import ActionProfile, profile_of

        profiles: dict[str, typing.Any] = {}
        for service in graph.services:
            vms = host.manager.vms_by_service.get(service, ())
            if vms:
                profile = profile_of(vms[0].nf)
                for vm in vms[1:]:
                    # Heterogeneous replicas: the service's effective
                    # profile is the union of its replicas' effects.
                    profile = profile.merged_with(profile_of(vm.nf))
            elif graph.is_read_only(service):
                profile = ActionProfile.declared_read_only()
            else:
                profile = ActionProfile.opaque_profile()
            profiles[service] = profile
        for group in graph.auto_parallel_layout(profiles):
            if len(group) < 2:
                continue
            local = [service for service in group
                     if placement is None
                     or placement[service] == host_name]
            if len(local) == len(group):
                host.manager.register_parallel_chain(group,
                                                     profiles=profiles)

    def _deploy_on_network(self, graph: ServiceGraph, network: typing.Any,
                           placement: dict[str, str] | None,
                           match: FlowMatch | None,
                           ingress_port: str, exit_port: str,
                           priority: int,
                           proactive: bool = True) -> GraphDeployment:
        """The routed deployment path (graphs spanning a topology).

        Compilation is pure (:mod:`repro.core.deploy_rules`); the install
        step only touches hosts the network actually realized, so a shard
        holding a subset of the hosts installs exactly its share of the
        same global plan.  With ``proactive=False`` nothing is installed
        up front: the deployment is registered and every host pulls its
        share of the routed cover on demand through the miss path.
        """
        from repro.core.deploy_rules import colocated_chains

        if placement is None:
            raise DistributedDeploymentError(
                "deploy(network=...) needs placement=")
        match = match or FlowMatch.any()
        host_names = (network.all_hosts if getattr(network, "all_hosts", ())
                      else tuple(network.hosts))
        if proactive:
            installs = compile_proactive_rules(
                graph, placement, hosts=host_names,
                topology=network.topology,
                inter_host_ports=network.inter_host_ports,
                host_names=host_names, match=match,
                ingress_port=ingress_port, exit_port=exit_port,
                priority=priority)
            for host_name, entry in installs:
                host = network.hosts.get(host_name)
                if host is not None:
                    host.install_rule(entry)
        else:
            # Validate the cover compiles (placement errors surface at
            # deploy time, not at first miss) without installing it.
            compile_distributed_rules(
                graph, placement, topology=network.topology,
                inter_host_ports=network.inter_host_ports,
                host_names=host_names, match=match,
                ingress_port=ingress_port, exit_port=exit_port,
                priority=priority)
        for host_name, chain in colocated_chains(graph, placement):
            host = network.hosts.get(host_name)
            if host is not None:
                host.manager.register_parallel_chain(chain)

        deployment = GraphDeployment(
            graph=graph, match=match, ingress_port=ingress_port,
            exit_port=exit_port, placement=dict(placement),
            inter_host_ports=dict(network.inter_host_ports),
            priority=priority, topology=network.topology,
            host_names=tuple(host_names))
        self.deployments.append(deployment)
        if self.event_log is not None:
            self.event_log.record(
                "deploy", graph=graph.name,
                hosts=len({placement[s] for s in graph.services}),
                services=len(graph.services))
        return deployment

    def _compile_for(self, deployment: GraphDeployment,
                     host_name: str) -> list[FlowTableEntry]:
        return deployment.graph.compile_rules(
            ingress_port=deployment.ingress_port,
            exit_port=deployment.exit_port,
            match=deployment.match,
            placement=deployment.placement,
            host=host_name if deployment.placement else None,
            inter_host_ports=deployment.inter_host_ports,
            priority=deployment.priority)

    def _install_all(self, pushes: list[tuple[NfvHost,
                                              list[FlowTableEntry]]]) -> None:
        """Install compiled per-host batches: directly without a
        controller, per host through a plain controller, or — when the
        deployment spans hosts and the controller is a sharded
        :class:`~repro.control.plane.ControlPlane` — as one cross-shard
        transaction with a deterministic commit order."""
        if not pushes:
            return
        if self.controller is None:
            for host, rules in pushes:
                host.install_rules(rules)
        elif (len(pushes) > 1
                and hasattr(self.controller, "install_batch")):
            self.controller.install_batch(
                [(host.manager, rules) for host, rules in pushes])
        else:
            for host, rules in pushes:
                self.controller.push_rules(host.manager, rules)

    def launch_nf(self, host: NfvHost | str,
                  nf_factory: typing.Callable[[], typing.Any],
                  mode: str | None = None,
                  launch_mode: str | None = None) -> Event:
        """Start a new NF VM via the orchestrator (Fig. 2 step 4).

        ``mode`` is one of ``"boot"`` / ``"standby_process"`` /
        ``"restore"``; ``launch_mode=`` is a deprecated alias.
        """
        if self.orchestrator is None:
            raise RuntimeError("no orchestrator attached")
        mode = _canonical_mode(mode, launch_mode)
        return self.orchestrator.launch_nf(host, nf_factory, mode=mode)

    # ------------------------------------------------------------------
    # Northbound interface for the SDN controller (on-demand rules)
    # ------------------------------------------------------------------
    def rules_for(self, host_name: str, scope: str,
                  flow: FiveTuple) -> list[FlowTableEntry]:
        """Rules for a reported miss: the host's share of the first
        deployment covering the flow.  Routed deployments recompile
        their topology-aware cover (transit and arrival rules included)
        and return this host's slice of it."""
        for deployment in self.deployments:
            if deployment.covers(flow):
                if deployment.topology is not None:
                    installs = compile_distributed_rules(
                        deployment.graph, deployment.placement,
                        topology=deployment.topology,
                        inter_host_ports=deployment.inter_host_ports,
                        host_names=deployment.host_names,
                        match=deployment.match,
                        ingress_port=deployment.ingress_port,
                        exit_port=deployment.exit_port,
                        priority=deployment.priority)
                    return [entry for name, entry in installs
                            if name == host_name]
                return self._compile_for(deployment, host_name)
        return []

    # ------------------------------------------------------------------
    # Cross-layer message validation (§3.4, untrusted NFs)
    # ------------------------------------------------------------------
    def validate(self, host_name: str, message: NfMessage) -> Event:
        """Policy check: NF requests must stay within the edges of the
        deployed service graphs."""
        verdict = self._is_permitted(message)
        event = self.sim.event()
        if not verdict:
            self.rejected_messages.append((host_name, message))
        if self.validation_latency_ns:
            self.sim.schedule(self.validation_latency_ns,
                              lambda: event.succeed(verdict))
        else:
            event.succeed(verdict)
        return event

    def _is_permitted(self, message: NfMessage) -> bool:
        if isinstance(message, UserMessage):
            return True
        if isinstance(message, ChangeDefault):
            for deployment in self.deployments:
                graph = deployment.graph
                if message.service not in graph.services:
                    continue
                if message.target.startswith("port:"):
                    return graph.has_edge(message.service, EXIT)
                if message.target == "drop":
                    return True
                return graph.has_edge(message.service, message.target)
            return False
        if isinstance(message, (SkipMe, RequestMe)):
            return any(message.service in deployment.graph.services
                       for deployment in self.deployments)
        return False

    # ------------------------------------------------------------------
    # NF → application messages (Fig. 2 step 5)
    # ------------------------------------------------------------------
    def on_message(self, key: str,
                   callback: typing.Callable[[str, UserMessage], None]
                   ) -> None:
        """Subscribe to UserMessages by key (e.g. a DDoS alarm handler)."""
        self._message_callbacks.setdefault(key, []).append(callback)

    def _handle_user_message(self, host_name: str,
                             message: UserMessage) -> None:
        self.messages_received.append((host_name, message))
        if self.event_log is not None:
            self.event_log.record("nf_message_up", host=host_name,
                                  key=message.key,
                                  sender=message.sender_service)
        for callback in self._message_callbacks.get(message.key, ()):
            callback(host_name, message)

    # ------------------------------------------------------------------
    # Auto-scaling: overload-driven replica instantiation
    # ------------------------------------------------------------------
    def enable_autoscaling(
            self, host: NfvHost | str,
            nf_factories: typing.Mapping[
                str, typing.Callable[[], typing.Any]],
            interval_ns: int = 100_000_000,
            threshold_slots: int = 256,
            max_replicas: int = 4,
            mode: str | None = None,
            launch_mode: str | None = None) -> None:
        """Boot extra replicas of overloaded services automatically.

        Wires the NF Manager's overload monitor (host tier) to the NFV
        orchestrator (global tier): sustained queue pressure on a service
        in ``nf_factories`` launches one more replica, up to
        ``max_replicas``, using a fast launch mode by default
        (``mode="standby_process"``; ``launch_mode=`` is a deprecated
        alias).
        """
        if self.orchestrator is None:
            raise RuntimeError("autoscaling needs an orchestrator")
        mode = _canonical_mode(mode, launch_mode) or "standby_process"
        self.orchestrator.launch_time_ns(mode)  # reject bad modes up front
        if isinstance(host, str):
            host = self.hosts[host]
        manager = host.manager
        pending: set[str] = set()

        def on_overload(service_id: str, depth: int) -> None:
            factory = nf_factories.get(service_id)
            if factory is None or service_id in pending:
                return
            replicas = len(manager.vms_by_service.get(service_id, ()))
            if replicas >= max_replicas:
                return
            pending.add(service_id)
            ready = self.orchestrator.launch_nf(host, factory, mode=mode)
            ready.callbacks.append(
                lambda _event: pending.discard(service_id))

        manager.start_overload_monitor(
            interval_ns=interval_ns, threshold_slots=threshold_slots,
            callback=on_overload)

    # ------------------------------------------------------------------
    # Failover: watchdog-driven replacement of dead / wedged NFs
    # ------------------------------------------------------------------
    def enable_failover(
            self, host: NfvHost | str,
            nf_factories: typing.Mapping[
                str, typing.Callable[[], typing.Any]],
            interval_ns: int = 10_000_000,
            heartbeat_timeout_ns: int = 50_000_000,
            mode: str = "standby_process",
            max_respawns: int = 8) -> NfWatchdog:
        """Detect dead or wedged NFs on ``host`` and replace them.

        Starts an :class:`~repro.faults.watchdog.NfWatchdog` on the
        host's manager; when a VM of a service in ``nf_factories`` fails,
        the watchdog salvages its queue (requeue to survivors / default-
        edge degradation), quarantines the service while it has no
        replicas, and this wiring launches a replacement through the
        orchestrator using a fast launch ``mode`` ("standby_process" or
        "restore").  When the replacement registers, quarantined rules
        are reinstated and the recovery (MTTR, packets lost) is recorded.
        ``max_respawns`` bounds replacement launches per service.
        """
        from repro.faults.watchdog import NfWatchdog

        if self.orchestrator is None:
            raise RuntimeError("failover needs an orchestrator")
        self.orchestrator.launch_time_ns(mode)  # reject bad modes up front
        if isinstance(host, str):
            host = self.hosts[host]
        respawns: dict[str, int] = {}

        def on_failure(service_id: str, vm: typing.Any,
                       cause: str) -> None:
            factory = nf_factories.get(service_id)
            if factory is None:
                return
            if respawns.get(service_id, 0) >= max_respawns:
                return
            respawns[service_id] = respawns.get(service_id, 0) + 1
            ready = self.orchestrator.launch_nf(host, factory, mode=mode)
            ready.callbacks.append(
                lambda _event: watchdog.notify_replacement(service_id))

        watchdog = NfWatchdog(
            host.manager, interval_ns=interval_ns,
            heartbeat_timeout_ns=heartbeat_timeout_ns,
            on_failure=on_failure)
        return watchdog.start()

    # ------------------------------------------------------------------
    # Telemetry: periodic upward state flow (§3.4 "NF–SDN Coordination")
    # ------------------------------------------------------------------
    def start_telemetry(self, interval_ns: int,
                        callback: typing.Callable[
                            [typing.Any], None] | None = None) -> None:
        """Periodically gather a HierarchySnapshot from every tier.

        The paper argues NF→SDN information flow (flow rates, drop rates,
        application triggers) needs first-class support; this is the
        polling half — UserMessages through :meth:`on_message` are the
        event-driven half.  Snapshots accumulate in ``telemetry``.
        """
        if interval_ns <= 0:
            raise ValueError("telemetry interval must be positive")
        self.sim.process(self._telemetry_loop(interval_ns, callback))

    def _telemetry_loop(self, interval_ns, callback):
        from repro.core.state import HierarchySnapshot
        while True:
            yield self.sim.timeout(interval_ns)
            snapshot = HierarchySnapshot.gather(self)
            self.telemetry.append(snapshot)
            if callback is not None:
                callback(snapshot)

    # ------------------------------------------------------------------
    # Network-wide rule updates initiated from the top
    # ------------------------------------------------------------------
    def broadcast_message(self, message: NfMessage,
                          hosts: typing.Iterable[str] | None = None
                          ) -> None:
        """Apply a cross-layer rewrite on many hosts (the 'affects other
        hosts' path of §3.4)."""
        for host_name in (hosts if hosts is not None else self.hosts):
            self.hosts[host_name].manager.apply_message(message)
