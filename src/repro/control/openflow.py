"""OpenFlow-style control messages, with the paper's repurposed semantics.

§4.1: "We repurpose the OpenFlow protocol's OFPT_FLOW_MOD messages to
define the forwarding actions between network functions.  We consider each
NF instance as a logical network port ... 'output to port SID'."  §3.3
repurposes the input-port match field to carry the Service ID scope, and
uses multi-action OUTPUT lists with a parallel flag.

These dataclasses model the message *semantics*; byte-level OpenFlow
framing is irrelevant to every experiment.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.dataplane.flow_table import FlowTableEntry
from repro.net.flow import FiveTuple


@dataclasses.dataclass(frozen=True)
class PacketInMessage:
    """A flow-table miss reported to the controller (header only —
    §4.1 sends "its header to the SDN controller")."""

    host: str
    scope: str  # NIC port or Service ID where the miss occurred
    flow: FiveTuple


@dataclasses.dataclass(frozen=True)
class FlowModMessage:
    """Rules pushed to a host's NF Manager (repurposed OFPT_FLOW_MOD)."""

    host: str
    entries: tuple[FlowTableEntry, ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise ValueError("empty FlowMod")


@dataclasses.dataclass(frozen=True)
class PrepareInstall:
    """Phase 1 of a cross-shard rule transaction: an involved shard
    acknowledges — through its own request queue — that it is ready to
    commit transaction ``txn_id`` for its ``hosts``.  Ordering through
    the queue is the point: a saturated or downed shard delays the
    transaction instead of letting commits race."""

    txn_id: int
    shard: int
    hosts: tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class CommitInstall:
    """Phase 2: one shard's share of the transaction's rules.  Commits
    are issued strictly in ascending shard order, so concurrent
    transactions serialize identically on every run."""

    txn_id: int
    shard: int
    entries: tuple[FlowTableEntry, ...]


@dataclasses.dataclass(frozen=True)
class StatsRequest:
    """Controller asking a host for its counters (northbound telemetry)."""

    host: str


@dataclasses.dataclass(frozen=True)
class NfNotification:
    """NF-originated data relayed controller-ward (§3.4's Message call,
    forwarded over the repurposed southbound channel — Fig. 2 step 5)."""

    host: str
    sender_service: str
    key: str
    value: typing.Any
