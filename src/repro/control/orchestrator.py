"""The NFV Orchestrator: VM lifecycle management (Fig. 2 step 4).

Starting an NF VM is not instant: §5.2 measures 7.75 s to boot a fresh VM,
and notes it "can be further reduced by just starting a new process in a
stand-by VM or by using fast VM restore techniques" — both are supported
here as alternative launch modes.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.dataplane.host import NfvHost
from repro.dataplane.vm import NfVm
from repro.nfs.base import NetworkFunction
from repro.sim.events import Event
from repro.sim.simulator import Simulator
from repro.sim.units import MS, seconds_to_ns

VM_BOOT_NS = seconds_to_ns(7.75)       # §5.2 measurement
STANDBY_PROCESS_NS = 250 * MS          # new process in a stand-by VM
VM_RESTORE_NS = seconds_to_ns(0.8)     # SnowFlock-style fast restore

_LAUNCH_DELAYS = {
    "boot": VM_BOOT_NS,
    "standby_process": STANDBY_PROCESS_NS,
    "restore": VM_RESTORE_NS,
}


@dataclasses.dataclass
class LaunchRecord:
    """One VM launch, for auditing and tests."""

    host: str
    service_id: str
    requested_at: int
    ready_at: int
    mode: str


class NfvOrchestrator:
    """Instantiates NF VMs on hosts, with realistic startup delays."""

    def __init__(self, sim: Simulator,
                 default_mode: str = "boot") -> None:
        if default_mode not in _LAUNCH_DELAYS:
            raise ValueError(f"unknown launch mode {default_mode!r}")
        self.sim = sim
        self.default_mode = default_mode
        self.launches: list[LaunchRecord] = []
        self.hosts: dict[str, NfvHost] = {}
        # Optional structured observability (repro.metrics.eventlog).
        self.event_log: typing.Any | None = None

    def register_host(self, host: NfvHost) -> None:
        if host.name in self.hosts:
            raise ValueError(f"duplicate host {host.name!r}")
        self.hosts[host.name] = host

    def launch_nf(self, host: NfvHost | str,
                  nf_factory: typing.Callable[[], NetworkFunction],
                  mode: str | None = None,
                  ring_slots: int = 512) -> Event:
        """Start an NF VM; the returned event fires with the ready NfVm."""
        if isinstance(host, str):
            host = self.hosts[host]
        mode = mode or self.default_mode
        if mode not in _LAUNCH_DELAYS:
            raise ValueError(f"unknown launch mode {mode!r}")
        ready = self.sim.event()
        requested_at = self.sim.now

        def bring_up() -> None:
            nf = nf_factory()
            vm = host.add_nf(nf, ring_slots=ring_slots)
            self.launches.append(LaunchRecord(
                host=host.name, service_id=nf.service_id,
                requested_at=requested_at, ready_at=self.sim.now,
                mode=mode))
            if self.event_log is not None:
                self.event_log.record("vm_launch", host=host.name,
                                      service=nf.service_id, mode=mode,
                                      boot_ns=self.sim.now - requested_at)
            ready.succeed(vm)

        self.sim.schedule(_LAUNCH_DELAYS[mode], bring_up)
        return ready

    def launch_time_ns(self, mode: str | None = None) -> int:
        mode = mode or self.default_mode
        if mode not in _LAUNCH_DELAYS:
            raise ValueError(f"unknown launch mode {mode!r}")
        return _LAUNCH_DELAYS[mode]

    def stop_vm(self, host: NfvHost | str, vm: NfVm) -> None:
        """Take a VM out of service: it stops receiving new packets.

        Packets already queued in its ring are abandoned (the paper's
        failure model — the NF Manager "respond[s] to failure or
        overload" by steering traffic to the remaining replicas).
        """
        if isinstance(host, str):
            host = self.hosts[host]
        host.manager.unregister_vm(vm)
