"""A sharded control plane: N controllers partitioned over flow space.

The paper deliberately bottlenecks flow setup on one single-threaded POX
controller (Figs. 1 and 10).  Dragonflow-style distribution is the escape
hatch: split the controller into *shards*, each an unmodified
:class:`~repro.control.controller.SdnController` with its own FIFO queue,
capacity, and outage state, and partition the work:

- **Reactive requests** (table-miss ``PacketInMessage``) route by flow:
  ``FiveTuple.hash_bucket(n_shards)`` names the owning shard, so one
  flow's setup always serializes through one queue while distinct flows
  spread over all shards — aggregate setup capacity scales with the
  shard count.
- **Proactive pushes** route by the *host* the rules land on (a stable
  FNV hash of the host name, overridable per host), so one host's table
  updates stay ordered.
- **Cross-shard installs** — a service graph whose hosts are owned by
  different shards — run a two-phase transaction: every involved shard
  accepts a :class:`~repro.control.openflow.PrepareInstall` through its
  own queue, then commits run strictly in ascending shard order
  (:class:`~repro.control.openflow.CommitInstall`), one at a time.  The
  deterministic commit order makes concurrent transactions serialize
  identically on every run, and every commit lands through
  ``manager.install_rule`` so the ownership verifier audits it like any
  other table write.

``shards=1`` constructs exactly one :class:`SdnController` and delegates
every call to it unchanged — byte-identical to today's single-controller
path (pinned by the golden-parity suite).

With ``failover=True`` (default), requests owned by a downed shard are
absorbed by the next live shard in ring order — the surviving shards
cover the dead shard's flow-space, so a :class:`ControllerOutage` on one
shard no longer stalls flows owned by the others.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

from repro.control.controller import SdnController
from repro.control.openflow import CommitInstall, PrepareInstall
from repro.dataplane.flow_table import FlowTableEntry
from repro.net.flow import FiveTuple
from repro.sim.events import Event
from repro.sim.simulator import Simulator
from repro.sim.units import US

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _host_bucket(name: str, buckets: int) -> int:
    """Stable FNV-1a bucket for a host name (hash() is salted per
    process; shard ownership must agree across workers and runs)."""
    digest = _FNV_OFFSET
    for byte in name.encode():
        digest = ((digest ^ byte) * _FNV_PRIME) & _MASK64
    return digest % buckets


@dataclasses.dataclass
class ControlPlaneStats:
    """Plane-level counters (per-shard load lives in each shard's
    :class:`~repro.control.controller.ControllerStats`)."""

    transactions: int = 0
    failovers: int = 0
    outages: int = 0


class ControlPlane:
    """N controller shards behind the single-controller interface.

    Drop-in for :class:`SdnController` wherever one is duck-typed
    (``NfManager.controller``, ``SdnfvApp(controller=...)``,
    ``FaultInjector(controller=...)``): ``flow_request`` / ``push_rules``
    / ``submit_work`` route to a shard and return that shard's reply
    event; ``northbound`` fans out to every shard.
    """

    def __init__(self, sim: Simulator, shards: int = 1,
                 service_time_ns: int = 500 * US,
                 propagation_ns: int = 15_250 * US,
                 northbound: typing.Any | None = None,
                 workers_per_shard: int = 1,
                 failover: bool = True,
                 host_shards: typing.Mapping[str, int] | None = None,
                 event_log: typing.Any | None = None) -> None:
        if shards < 1:
            raise ValueError("need at least one controller shard")
        self.sim = sim
        self.service_time_ns = service_time_ns
        self.propagation_ns = propagation_ns
        self.failover = failover
        self.event_log = event_log
        self.stats = ControlPlaneStats()
        self._northbound = northbound
        self._host_shards = dict(host_shards or {})
        self._txn_ids = itertools.count()
        self.shards: tuple[SdnController, ...] = tuple(
            SdnController(sim, service_time_ns=service_time_ns,
                          propagation_ns=propagation_ns,
                          northbound=northbound,
                          workers=workers_per_shard)
            for _ in range(shards))

    # ------------------------------------------------------------------
    # Single-controller compatibility surface
    # ------------------------------------------------------------------
    @property
    def northbound(self) -> typing.Any | None:
        return self._northbound

    @northbound.setter
    def northbound(self, app: typing.Any | None) -> None:
        self._northbound = app
        for shard in self.shards:
            shard.northbound = app

    @property
    def down(self) -> bool:
        """The plane is down only when *every* shard is down."""
        return all(shard.down for shard in self.shards)

    @property
    def idle_lookup_ns(self) -> int:
        return self.shards[0].idle_lookup_ns

    @property
    def capacity_per_second(self) -> float:
        """Aggregate saturation request rate across all shards."""
        return sum(shard.capacity_per_second for shard in self.shards)

    def attach_event_log(self, event_log: typing.Any) -> None:
        self.event_log = event_log

    # ------------------------------------------------------------------
    # Flow-space partition
    # ------------------------------------------------------------------
    def owner_of(self, flow: FiveTuple) -> int:
        """The shard owning this flow's slice of flow space."""
        return flow.hash_bucket(len(self.shards))

    def shard_for_host(self, host_name: str) -> int:
        """The shard owning a host's proactive rule channel."""
        explicit = self._host_shards.get(host_name)
        if explicit is not None:
            return explicit % len(self.shards)
        return _host_bucket(host_name, len(self.shards))

    def _route(self, index: int) -> tuple[int, SdnController]:
        """Resolve an owner index to a live shard (ring failover)."""
        shard = self.shards[index]
        if not shard.down or not self.failover:
            return index, shard
        count = len(self.shards)
        for offset in range(1, count):
            candidate = (index + offset) % count
            if not self.shards[candidate].down:
                self.stats.failovers += 1
                self._log("shard_failover", shard=index, absorbed_by=candidate)
                return candidate, self.shards[candidate]
        return index, shard  # total outage: queue at the owner

    # ------------------------------------------------------------------
    # Southbound / northbound request routing
    # ------------------------------------------------------------------
    def flow_request(self, host: str, scope: str, flow: FiveTuple) -> Event:
        """Packet-in, routed to the flow's owning shard (or, during that
        shard's outage, absorbed by the next live shard)."""
        _index, shard = self._route(self.owner_of(flow))
        return shard.flow_request(host, scope, flow)

    def push_rules(self, host_manager: typing.Any,
                   entries: typing.Sequence[FlowTableEntry]) -> Event:
        """Proactive install on one host through its owning shard."""
        _index, shard = self._route(self.shard_for_host(host_manager.name))
        return shard.push_rules(host_manager, entries)

    def submit_work(self, compute: typing.Callable[[], typing.Any],
                    shard: int = 0) -> Event:
        """Controller-resident work pinned to one shard's queue."""
        return self.shards[shard].submit_work(compute)

    # ------------------------------------------------------------------
    # Cross-shard installs: two-phase, deterministic commit order
    # ------------------------------------------------------------------
    def install_batch(self, installs: typing.Sequence[
            tuple[typing.Any, typing.Sequence[FlowTableEntry]]]) -> Event:
        """Install per-host rule batches as one atomic-order transaction.

        Batches whose hosts are all owned by one shard take the fast
        path: plain per-host pushes through that shard's queue.  Batches
        spanning shards run two-phase — a prepare through every involved
        shard's queue (so a saturated or downed shard delays the whole
        transaction, never reorders it), then commits strictly in
        ascending shard order.  The returned event fires with the
        transaction id once every rule is installed.
        """
        groups: dict[int, list[tuple[typing.Any,
                                     typing.Sequence[FlowTableEntry]]]] = {}
        for manager, entries in installs:
            groups.setdefault(self.shard_for_host(manager.name),
                              []).append((manager, entries))
        order = sorted(groups)
        txn_id = next(self._txn_ids)
        if len(order) <= 1:
            replies = [self.shards[index].push_rules(manager, list(entries))
                       for index in order
                       for manager, entries in groups[index]]
            done = self.sim.event()
            gate = self.sim.all_of(replies)
            gate.callbacks.append(lambda _event: done.succeed(txn_id))
            return done
        done = self.sim.event()
        self.stats.transactions += 1
        self.sim.process(self._two_phase(txn_id, groups, order, done))
        return done

    def _two_phase(self, txn_id: int,
                   groups: dict[int, list[tuple[typing.Any,
                                                typing.Sequence[
                                                    FlowTableEntry]]]],
                   order: list[int], done: Event):
        prepares = []
        for index in order:
            message = PrepareInstall(
                txn_id=txn_id, shard=index,
                hosts=tuple(manager.name for manager, _ in groups[index]))
            self._log("txn_prepare", shard=index, txn=txn_id,
                      hosts=len(message.hosts))
            prepares.append(self.shards[index].submit_work(
                lambda prepared=message: prepared))
        yield self.sim.all_of(prepares)
        for index in order:
            batch = groups[index]
            message = CommitInstall(
                txn_id=txn_id, shard=index,
                entries=tuple(entry for _manager, entries in batch
                              for entry in entries))

            def commit(batch=batch, message=message) -> int:
                for manager, entries in batch:
                    for entry in entries:
                        manager.install_rule(entry)
                return len(message.entries)

            installed = yield self.shards[index].submit_work(commit)
            self._log("txn_commit", shard=index, txn=txn_id,
                      rules=installed)
        done.succeed(txn_id)

    # ------------------------------------------------------------------
    # Outages (repro.faults.ControllerOutage, per shard or plane-wide)
    # ------------------------------------------------------------------
    def set_down(self, down: bool, shard: int | None = None) -> None:
        """Take one shard (or, with ``shard=None``, every shard) down or
        bring it back; transitions land in the event log for MTTR."""
        if shard is None:
            for index in range(len(self.shards)):
                self.set_down(down, shard=index)
            return
        controller = self.shards[shard]
        if controller.down == down:
            return
        controller.set_down(down)
        self._log("controller_shard_down" if down
                  else "controller_shard_restored", shard=shard)

    def outage(self, duration_ns: int, shard: int | None = None) -> None:
        """A bounded outage of one shard (or the whole plane)."""
        if duration_ns <= 0:
            raise ValueError("outage duration must be positive")
        if shard is None:
            for index in range(len(self.shards)):
                self.outage(duration_ns, shard=index)
            return
        self.stats.outages += 1
        self.shards[shard].stats.outages += 1
        self.set_down(True, shard=shard)
        self.sim.schedule(duration_ns,
                          lambda: self.set_down(False, shard=shard))

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def queue_depths(self) -> list[int]:
        return [shard.queue_depth for shard in self.shards]

    def utilizations(self, elapsed_ns: int) -> list[float]:
        return [shard.stats.utilization(elapsed_ns)
                for shard in self.shards]

    @property
    def requests(self) -> int:
        return sum(shard.stats.requests for shard in self.shards)

    def snapshot(self) -> dict[str, typing.Any]:
        """Per-shard load rows plus plane counters, as primitives."""
        return {
            "shards": [shard.snapshot() for shard in self.shards],
            "transactions": self.stats.transactions,
            "failovers": self.stats.failovers,
            "outages": self.stats.outages,
        }

    def _log(self, category: str, **detail: typing.Any) -> None:
        if self.event_log is not None:
            self.event_log.record(category, **detail)
