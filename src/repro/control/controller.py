"""A POX-like SDN controller: single-threaded, queueing, northbound API.

The paper uses POX, "a single threaded python application", deliberately —
its saturation is the phenomenon behind Fig. 1 and Fig. 10.  We model the
controller as a single-server FIFO queue with a configurable per-request
service time, plus symmetric channel propagation delay.  At idle the total
flow-setup round trip matches §5.1's measured 31 ms; under load, queueing
delay grows without bound — exactly the behaviour the experiments show.

Rule content comes from a pluggable *northbound application* (usually the
:class:`~repro.core.app.SdnfvApp`) implementing ``rules_for(host, scope,
flow)``.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.control.openflow import PacketInMessage
from repro.dataplane.flow_table import FlowTableEntry
from repro.net.flow import FiveTuple
from repro.sim.events import Event
from repro.sim.simulator import Simulator
from repro.sim.store import Store
from repro.sim.units import US


@dataclasses.dataclass
class ControllerStats:
    """Load counters for the controller."""

    requests: int = 0
    busy_ns: int = 0
    max_queue: int = 0
    failures: int = 0
    outages: int = 0

    def utilization(self, elapsed_ns: int) -> float:
        return self.busy_ns / elapsed_ns if elapsed_ns else 0.0


class _Job:
    """One unit of controller work: compute a result, then reply."""

    def __init__(self, compute: typing.Callable[[], typing.Any],
                 reply: Event) -> None:
        self.compute = compute
        self.reply = reply


class SdnController:
    """Single-threaded controller with a FIFO request queue."""

    def __init__(self, sim: Simulator,
                 service_time_ns: int = 500 * US,
                 propagation_ns: int = 15_250 * US,
                 northbound: typing.Any | None = None,
                 workers: int = 1) -> None:
        """``workers=1`` models POX.  The paper expects "a similar trend
        even with higher performance SDN Controllers" — raise ``workers``
        to model a multi-threaded controller and check that the
        saturation point shifts but the shape stays."""
        if service_time_ns <= 0:
            raise ValueError("service time must be positive")
        if workers < 1:
            raise ValueError("need at least one worker")
        self.sim = sim
        self.service_time_ns = service_time_ns
        self.propagation_ns = propagation_ns
        self.northbound = northbound
        self.workers = workers
        self.stats = ControllerStats()
        self.down = False
        self._restored: Event | None = None
        self._queue = Store(sim)
        for _ in range(workers):
            sim.process(self._serve())

    # ------------------------------------------------------------------
    # Outages (repro.faults.ControllerOutage)
    # ------------------------------------------------------------------
    def set_down(self, down: bool) -> None:
        """Take the controller down / bring it back.  While down, requests
        still propagate and queue, but no worker serves them — hosts see
        unbounded response times (what their retry policies must absorb).
        """
        if down == self.down:
            return
        self.down = down
        if down:
            self._restored = self.sim.event()
        else:
            restored, self._restored = self._restored, None
            if restored is not None:
                restored.succeed()

    def outage(self, duration_ns: int) -> None:
        """A bounded outage: down now, back after ``duration_ns``."""
        if duration_ns <= 0:
            raise ValueError("outage duration must be positive")
        self.stats.outages += 1
        self.set_down(True)
        self.sim.schedule(duration_ns, lambda: self.set_down(False))

    @property
    def idle_lookup_ns(self) -> int:
        """Flow-setup round trip with an empty queue (§5.1: 31 ms)."""
        return 2 * self.propagation_ns + self.service_time_ns

    @property
    def capacity_per_second(self) -> float:
        """Saturation request rate across all worker threads."""
        return self.workers * 1e9 / self.service_time_ns

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def snapshot(self) -> dict[str, int | float | bool]:
        """Scalar load counters as primitives — one row of a control-
        plane report (:meth:`repro.control.plane.ControlPlane.snapshot`).
        """
        return {
            "requests": self.stats.requests,
            "busy_ns": self.stats.busy_ns,
            "utilization": self.stats.utilization(self.sim.now),
            "queue_depth": self.queue_depth,
            "max_queue": self.stats.max_queue,
            "failures": self.stats.failures,
            "outages": self.stats.outages,
            "down": self.down,
        }

    # ------------------------------------------------------------------
    # Southbound: hosts ask for rules on a flow-table miss
    # ------------------------------------------------------------------
    def flow_request(self, host: str, scope: str,
                     flow: FiveTuple) -> Event:
        """Submit a packet-in; the event fires with the rule list after the
        full round trip (propagation + queueing + service + propagation)."""
        message = PacketInMessage(host=host, scope=scope, flow=flow)
        return self._submit(lambda: self._rules_for(message))

    def _rules_for(self, message: PacketInMessage) -> list[FlowTableEntry]:
        if self.northbound is None:
            return []
        return list(self.northbound.rules_for(message.host, message.scope,
                                              message.flow))

    # ------------------------------------------------------------------
    # Northbound: proactive pushes from the SDNFV Application
    # ------------------------------------------------------------------
    def push_rules(self, host_manager: typing.Any,
                   entries: typing.Sequence[FlowTableEntry]) -> Event:
        """Install rules on a host through the controller (Fig. 2 steps
        2–3).  Occupies one service slot plus propagation each way; the
        returned event fires once the rules are installed on the host."""
        def deliver() -> bool:
            for entry in entries:
                host_manager.install_rule(entry)
            return True

        return self._submit(deliver)

    def submit_work(self, compute: typing.Callable[[], typing.Any]) -> Event:
        """Run arbitrary controller-resident work through the queue (used
        by SDN-baseline applications whose logic lives in the controller).
        """
        return self._submit(compute)

    # ------------------------------------------------------------------
    # The single-threaded server
    # ------------------------------------------------------------------
    def _submit(self, compute: typing.Callable[[], typing.Any]) -> Event:
        reply = self.sim.event()
        job = _Job(compute, reply)
        # Request propagation to the controller.
        self.sim.schedule(self.propagation_ns,
                          lambda: self._queue.try_put(job))
        return reply

    def _serve(self):
        while True:
            job: _Job = yield self._queue.get()
            while self.down:
                yield self._restored
            self.stats.max_queue = max(self.stats.max_queue,
                                       len(self._queue) + 1)
            yield self.sim.timeout(self.service_time_ns)
            self.stats.requests += 1
            self.stats.busy_ns += self.service_time_ns
            try:
                result = job.compute()
            except Exception as error:  # noqa: BLE001 - app fault isolation
                # A buggy northbound app must not kill the controller:
                # fail that one request and keep serving.
                self.stats.failures += 1
                self.sim.schedule(self.propagation_ns,
                                  lambda event=job.reply, exc=error:
                                  event.fail(exc))
                continue
            # Reply propagation back to the host.
            self.sim.schedule(self.propagation_ns,
                              lambda event=job.reply, value=result:
                              event.succeed(value))
