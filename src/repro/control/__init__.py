"""The SDN control tier: controller, orchestrator, and protocol messages.

The SDN Controller and NFV Orchestrator "provide interfaces between the
SDNFV Application and the NF Manager" (§3.1).  The controller is modeled
on POX: a single-threaded request server whose saturation behaviour drives
Figs. 1 and 10.
"""

from repro.control.controller import ControllerStats, SdnController
from repro.control.openflow import FlowModMessage, PacketInMessage
from repro.control.orchestrator import NfvOrchestrator

__all__ = [
    "ControllerStats",
    "FlowModMessage",
    "NfvOrchestrator",
    "PacketInMessage",
    "SdnController",
]
