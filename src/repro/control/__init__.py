"""The SDN control tier: controller, control plane, orchestrator, messages.

The SDN Controller and NFV Orchestrator "provide interfaces between the
SDNFV Application and the NF Manager" (§3.1).  The controller is modeled
on POX: a single-threaded request server whose saturation behaviour drives
Figs. 1 and 10.  :class:`ControlPlane` lifts that ceiling: N controller
shards partitioned over flow space behind the same interface, with a
two-phase protocol for cross-shard rule installs.
"""

from repro.control.controller import ControllerStats, SdnController
from repro.control.openflow import (
    CommitInstall,
    FlowModMessage,
    PacketInMessage,
    PrepareInstall,
)
from repro.control.orchestrator import NfvOrchestrator
from repro.control.plane import ControlPlane, ControlPlaneStats

__all__ = [
    "CommitInstall",
    "ControlPlane",
    "ControlPlaneStats",
    "ControllerStats",
    "FlowModMessage",
    "NfvOrchestrator",
    "PacketInMessage",
    "PrepareInstall",
    "SdnController",
]
