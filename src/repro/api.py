"""``repro.api`` — the blessed public surface, importable from one place.

Examples, docs, and downstream code should prefer::

    from repro.api import Simulator, NfvHost, SdnfvApp, PktGen, FaultPlan

over deep module paths.  Deep imports (``repro.dataplane.manager`` etc.)
keep working and remain the right choice for internals and rarely-used
helpers; everything re-exported here is covered by the API guide
(``docs/api_guide.md``) and kept stable across releases.
"""

from __future__ import annotations

# Simulation kernel
from repro.sim import (
    MS,
    NS,
    S,
    US,
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Simulator,
    Store,
    Timeout,
    ns_to_seconds,
    seconds_to_ns,
)
from repro.sim.randomness import RandomStreams

# Packets and flows
from repro.net import FiveTuple, FlowMatch, Packet

# Data plane (one SDNFV host)
from repro.dataplane import (
    DEFAULT_BURST_SIZE,
    ControlPlanePolicy,
    Drop,
    FlowTable,
    FlowTableEntry,
    HostCosts,
    HostStats,
    LoadBalancePolicy,
    NfManager,
    NfVm,
    NfvHost,
    ToPort,
    ToService,
    Verdict,
)
from repro.dataplane.messages import (
    ChangeDefault,
    NfMessage,
    RequestMe,
    SkipMe,
    UserMessage,
)

# NF programming model
from repro.nfs import NetworkFunction, NfContext, action_profile

# Control tier
from repro.control import ControlPlane, NfvOrchestrator, SdnController

# Global tier: graphs, the application, placement
from repro.core import (
    DROP,
    EXIT,
    GraphDeployment,
    SdnfvApp,
    ServiceGraph,
    compile_proactive_rules,
    deploy_distributed,
)

# Faults and resilience
from repro.faults import (
    ControllerOutage,
    FaultInjector,
    FaultPlan,
    HostOverload,
    LinkFlap,
    NfCrash,
    NfHang,
    NfWatchdog,
)

# Topology building
from repro.topology import (
    BoundaryWire,
    BuiltNetwork,
    Link,
    NodeSpec,
    Topology,
    build_network,
)

# Sharded parallel simulation
from repro.sim.sharded import (
    Scenario,
    ShardPlan,
    ShardRuntime,
    ShardedRunResult,
    ShardedSimulator,
    TrafficSpec,
)

# Workloads and observability
from repro.metrics.controlplane import ControlPlaneMonitor
from repro.metrics.eventlog import EventLog, merge_events
from repro.workloads import FlowSpec, PktGen

# Correctness tooling (the dynamic layer of repro.analysis; the static
# lint layer is the `tools/sdnfv_lint.py` CLI, not a library API)
from repro.analysis import HostVerifier, OwnershipError, VerifyReport

__all__ = [
    # kernel
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "MS",
    "NS",
    "Process",
    "RandomStreams",
    "S",
    "Simulator",
    "Store",
    "Timeout",
    "US",
    "ns_to_seconds",
    "seconds_to_ns",
    # packets and flows
    "FiveTuple",
    "FlowMatch",
    "Packet",
    # data plane
    "ControlPlanePolicy",
    "DEFAULT_BURST_SIZE",
    "Drop",
    "FlowTable",
    "FlowTableEntry",
    "HostCosts",
    "HostStats",
    "LoadBalancePolicy",
    "NfManager",
    "NfVm",
    "NfvHost",
    "ToPort",
    "ToService",
    "Verdict",
    # cross-layer messages
    "ChangeDefault",
    "NfMessage",
    "RequestMe",
    "SkipMe",
    "UserMessage",
    # NF programming model
    "NetworkFunction",
    "action_profile",
    "NfContext",
    # control tier
    "ControlPlane",
    "NfvOrchestrator",
    "SdnController",
    # global tier
    "DROP",
    "EXIT",
    "GraphDeployment",
    "SdnfvApp",
    "ServiceGraph",
    "compile_proactive_rules",
    "deploy_distributed",
    # faults and resilience
    "ControllerOutage",
    "FaultInjector",
    "FaultPlan",
    "HostOverload",
    "LinkFlap",
    "NfCrash",
    "NfHang",
    "NfWatchdog",
    # topology building
    "BoundaryWire",
    "BuiltNetwork",
    "Link",
    "NodeSpec",
    "Topology",
    "build_network",
    # sharded parallel simulation
    "Scenario",
    "ShardPlan",
    "ShardRuntime",
    "ShardedRunResult",
    "ShardedSimulator",
    "TrafficSpec",
    # workloads and observability
    "ControlPlaneMonitor",
    "EventLog",
    "FlowSpec",
    "PktGen",
    "merge_events",
    # correctness tooling
    "HostVerifier",
    "OwnershipError",
    "VerifyReport",
]
