"""The simulated NF VM: one thread polling its RX ring, running the NF.

Paper §4.3: each VM runs a single network function as a user-space
application; each core runs a thread with its own ring buffer pair shared
with the host's RX/TX threads.  Here one :class:`NfVm` models one such
thread (replicas of a service are separate ``NfVm`` instances, which is
also how the load balancer sees them).

Failure model (§3.1: NF Managers "respond to failure or overload"): a VM
may *crash* (its thread dies, :class:`~repro.sim.events.Interrupt` is
thrown into the packet loop) or *hang* (the thread wedges mid-packet and
stops making progress).  Liveness is exposed through the same shared ring
state a real manager reads — ``last_progress_ns`` advances every time the
thread moves a descriptor, which is the heartbeat the watchdog in
:mod:`repro.faults.watchdog` samples.
"""

from __future__ import annotations

import itertools
import typing

from repro.dataplane.costs import HostCosts
from repro.dataplane.descriptors import PacketDescriptor
from repro.dataplane.rings import DEFAULT_RING_SLOTS, RingBuffer
from repro.nfs.base import NetworkFunction, NfContext
from repro.sim.events import Interrupt

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.dataplane.manager import NfManager

_vm_ids = itertools.count()


class NfVm:
    """One VM thread hosting a network function."""

    def __init__(self, manager: "NfManager", nf: NetworkFunction,
                 ring_slots: int = DEFAULT_RING_SLOTS,
                 priority: int = 0) -> None:
        self.manager = manager
        self.sim = manager.sim
        self.nf = nf
        self.vm_id = f"vm{next(_vm_ids)}-{nf.service_id}"
        self.priority = priority
        self.rx_ring = RingBuffer(self.sim, name=f"{self.vm_id}/rx",
                                  slots=ring_slots)
        self.packets_processed = 0
        self.packets_lost = 0
        self.busy_ns = 0
        # Heartbeat state: when the thread last moved a descriptor, and the
        # descriptor it currently holds (None while idle on the ring).
        self.last_progress_ns = 0
        self.inflight: PacketDescriptor | None = None
        self.failed = False
        self.failure_cause: str | None = None
        self._hung = False
        self.ctx = NfContext(
            sim=self.sim,
            service_id=nf.service_id,
            vm_id=self.vm_id,
            submit_message=manager.submit_nf_message,
            rng=manager.streams.stream(self.vm_id),
        )
        self._process = None

    @property
    def service_id(self) -> str:
        return self.nf.service_id

    @property
    def read_only(self) -> bool:
        return self.nf.read_only

    @property
    def crashed(self) -> bool:
        """True once the VM's thread is dead — killed, or the NF raised."""
        return self.failed or (self._process is not None
                               and not self._process.is_alive)

    def stalled(self, now_ns: int, heartbeat_timeout_ns: int) -> bool:
        """Wedged: holding a descriptor but no progress for too long.

        An idle VM (nothing in flight) is never considered stalled — it is
        legitimately blocked on its empty RX ring.
        """
        return (not self.failed
                and self.inflight is not None
                and now_ns - self.last_progress_ns >= heartbeat_timeout_ns)

    def start(self) -> None:
        """Begin the VM's packet loop (called at registration)."""
        if self._process is not None:
            raise RuntimeError(f"{self.vm_id} already started")
        self.nf.on_register(self.ctx)
        self._process = self.sim.process(self._run())

    # ------------------------------------------------------------------
    # Fault surface (driven by repro.faults)
    # ------------------------------------------------------------------
    def crash(self, cause: str = "crash") -> None:
        """Kill the VM thread at the current time.

        The interrupt is delivered asynchronously (at the current
        timestamp); the packet loop's cleanup then marks the VM failed
        and accounts for any in-flight descriptor.  Idempotent.
        """
        if self.failed or self._process is None or not self._process.is_alive:
            self.failed = True
            self.failure_cause = self.failure_cause or cause
            return
        self._hung = False
        self._process.interrupt(cause)

    def hang(self) -> None:
        """Wedge the VM: it stops mid-packet on its next dequeue and makes
        no further progress until crashed/terminated."""
        self._hung = True

    # ------------------------------------------------------------------
    # Packet loop
    # ------------------------------------------------------------------
    def _run(self):
        costs: HostCosts = self.manager.costs
        try:
            while True:
                descriptor: PacketDescriptor = yield self.rx_ring.get()
                self.inflight = descriptor
                self.last_progress_ns = self.sim.now
                if self._hung:
                    # Wedged mid-packet: block on an event that never
                    # fires.  Only an interrupt (watchdog kill) resumes us.
                    yield self.sim.event()
                work = (costs.vm_service_ns
                        + self.nf.processing_cost_ns(descriptor.packet,
                                                     self.ctx))
                yield self.sim.timeout(work)
                self.busy_ns += work
                self.packets_processed += 1
                descriptor.verdict = self.nf.handle_packet(descriptor.packet,
                                                           self.ctx)
                descriptor.scope = self.service_id
                descriptor.vm_priority = self.priority
                self.inflight = None
                self.last_progress_ns = self.sim.now
                # Ring hops + poll-batching pickup are latency, not
                # occupancy: hand the descriptor to the TX tier after a
                # non-blocking delay.  Parallel-group members are staggered
                # by their index, modeling cache contention on the shared
                # packet buffer.
                delay = costs.vm_pipeline_latency_ns
                if descriptor.group_id is not None:
                    delay += costs.parallel_stagger_ns * descriptor.group_index
                self.sim.schedule(
                    delay,
                    lambda desc=descriptor: self.manager.tx_submit(desc, self))
        except Interrupt as interrupt:
            self._on_killed(str(interrupt.cause or "crash"))

    def _on_killed(self, cause: str) -> None:
        self.failed = True
        self.failure_cause = cause
        self._hung = False
        if self.inflight is not None:
            # The packet the NF was holding dies with it.
            self.packets_lost += 1
            self.manager.stats.lost_in_nf += 1
            self.inflight.packet.release()
            self.inflight = None

    def __repr__(self) -> str:
        state = " FAILED" if self.failed else ""
        return (f"<NfVm {self.vm_id} queue={self.rx_ring.occupancy} "
                f"processed={self.packets_processed}{state}>")
