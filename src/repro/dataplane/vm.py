"""The simulated NF VM: one thread polling its RX ring, running the NF.

Paper §4.3: each VM runs a single network function as a user-space
application; each core runs a thread with its own ring buffer pair shared
with the host's RX/TX threads.  Here one :class:`NfVm` models one such
thread (replicas of a service are separate ``NfVm`` instances, which is
also how the load balancer sees them).
"""

from __future__ import annotations

import itertools
import typing

from repro.dataplane.costs import HostCosts
from repro.dataplane.descriptors import PacketDescriptor
from repro.dataplane.rings import DEFAULT_RING_SLOTS, RingBuffer
from repro.nfs.base import NetworkFunction, NfContext

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.dataplane.manager import NfManager

_vm_ids = itertools.count()


class NfVm:
    """One VM thread hosting a network function."""

    def __init__(self, manager: "NfManager", nf: NetworkFunction,
                 ring_slots: int = DEFAULT_RING_SLOTS,
                 priority: int = 0) -> None:
        self.manager = manager
        self.sim = manager.sim
        self.nf = nf
        self.vm_id = f"vm{next(_vm_ids)}-{nf.service_id}"
        self.priority = priority
        self.rx_ring = RingBuffer(self.sim, name=f"{self.vm_id}/rx",
                                  slots=ring_slots)
        self.packets_processed = 0
        self.busy_ns = 0
        self.ctx = NfContext(
            sim=self.sim,
            service_id=nf.service_id,
            vm_id=self.vm_id,
            submit_message=manager.submit_nf_message,
            rng=manager.streams.stream(self.vm_id),
        )
        self._process = None

    @property
    def service_id(self) -> str:
        return self.nf.service_id

    @property
    def read_only(self) -> bool:
        return self.nf.read_only

    def start(self) -> None:
        """Begin the VM's packet loop (called at registration)."""
        if self._process is not None:
            raise RuntimeError(f"{self.vm_id} already started")
        self.nf.on_register(self.ctx)
        self._process = self.sim.process(self._run())

    def _run(self):
        costs: HostCosts = self.manager.costs
        while True:
            descriptor: PacketDescriptor = yield self.rx_ring.get()
            work = (costs.vm_service_ns
                    + self.nf.processing_cost_ns(descriptor.packet, self.ctx))
            yield self.sim.timeout(work)
            self.busy_ns += work
            self.packets_processed += 1
            descriptor.verdict = self.nf.handle_packet(descriptor.packet,
                                                       self.ctx)
            descriptor.scope = self.service_id
            descriptor.vm_priority = self.priority
            # Ring hops + poll-batching pickup are latency, not occupancy:
            # hand the descriptor to the TX tier after a non-blocking delay.
            # Parallel-group members are staggered by their index, modeling
            # cache contention on the shared packet buffer.
            delay = costs.vm_pipeline_latency_ns
            if descriptor.group_id is not None:
                delay += costs.parallel_stagger_ns * descriptor.group_index
            self.sim.schedule(
                delay,
                lambda desc=descriptor: self.manager.tx_submit(desc, self))

    def __repr__(self) -> str:
        return (f"<NfVm {self.vm_id} queue={self.rx_ring.occupancy} "
                f"processed={self.packets_processed}>")
