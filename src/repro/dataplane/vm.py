"""The simulated NF VM: one thread polling its RX ring, running the NF.

Paper §4.3: each VM runs a single network function as a user-space
application; each core runs a thread with its own ring buffer pair shared
with the host's RX/TX threads.  Here one :class:`NfVm` models one such
thread (replicas of a service are separate ``NfVm`` instances, which is
also how the load balancer sees them).

Failure model (§3.1: NF Managers "respond to failure or overload"): a VM
may *crash* (its thread dies, :class:`~repro.sim.events.Interrupt` is
thrown into the packet loop) or *hang* (the thread wedges mid-packet and
stops making progress).  Liveness is exposed through the same shared ring
state a real manager reads — ``last_progress_ns`` advances every time the
thread moves a descriptor, which is the heartbeat the watchdog in
:mod:`repro.faults.watchdog` samples.
"""

from __future__ import annotations

import typing

from repro.dataplane.costs import HostCosts
from repro.dataplane.descriptors import PacketDescriptor
from repro.dataplane.rings import (DEFAULT_RING_SLOTS, RingBuffer,
                                   batch_weight)
from repro.net.batch import PacketBatch
from repro.nfs.base import NetworkFunction, NfContext
from repro.sim.events import Interrupt

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.dataplane.manager import NfManager


class NfVm:
    """One VM thread hosting a network function."""

    def __init__(self, manager: NfManager, nf: NetworkFunction,
                 ring_slots: int = DEFAULT_RING_SLOTS,
                 priority: int = 0) -> None:
        self.manager = manager
        self.sim = manager.sim
        self.nf = nf
        # VM ids are minted per manager, not from a module-global counter:
        # they name rings, TX assignments, and per-VM RNG streams, so they
        # must depend only on this host's registration order (a sharded
        # run builds hosts in a different global order than a monolithic
        # one, but each host sees the same local sequence).
        self.vm_id = f"vm{next(manager._vm_ids)}-{nf.service_id}"
        self.priority = priority
        self.rx_ring = RingBuffer(self.sim, name=f"{self.vm_id}/rx",
                                  slots=ring_slots,
                                  columnar=manager.columnar,
                                  stats=manager.stats)
        self.packets_processed = 0
        self.packets_lost = 0
        self.busy_ns = 0
        # Heartbeat state: when the thread last moved a descriptor, and the
        # descriptor it currently holds (None while idle on the ring).
        # With bursts, ``inflight`` is the head of the batch the thread is
        # working through; the not-yet-processed tail sits in ``_pending``
        # (salvageable on failure) and ``_busy_until_ns`` tells the
        # watchdog how long the current batch legitimately runs.
        self.last_progress_ns = 0
        self.inflight: PacketDescriptor | None = None
        self._pending: list[PacketDescriptor] = []
        self._busy_until_ns = 0
        self.failed = False
        self.failure_cause: str | None = None
        self._hung = False
        self.ctx = NfContext(
            sim=self.sim,
            service_id=nf.service_id,
            vm_id=self.vm_id,
            submit_message=manager.submit_nf_message,
            rng=manager.streams.stream(self.vm_id),
        )
        self._process = None

    @property
    def service_id(self) -> str:
        return self.nf.service_id

    @property
    def read_only(self) -> bool:
        return self.nf.read_only

    @property
    def crashed(self) -> bool:
        """True once the VM's thread is dead — killed, or the NF raised."""
        return self.failed or (self._process is not None
                               and not self._process.is_alive)

    def stalled(self, now_ns: int, heartbeat_timeout_ns: int) -> bool:
        """Wedged: holding a descriptor but no progress for too long.

        An idle VM (nothing in flight) is never considered stalled — it is
        legitimately blocked on its empty RX ring.  A VM inside a long
        batch is not stalled either: its heartbeat reference advances to
        the batch's expected completion time, so a 32-packet burst of a
        slow NF does not trip the watchdog mid-batch.
        """
        if self.failed or self.inflight is None:
            return False
        reference = max(self.last_progress_ns,
                        min(self._busy_until_ns, now_ns))
        return now_ns - reference >= heartbeat_timeout_ns

    def take_pending_batch(self) -> list[PacketDescriptor]:
        """Remove and return the dequeued-but-unprocessed batch tail.

        Failover salvage (``NfManager.fail_vm``): descriptors the thread
        had burst-dequeued but not started are recoverable intact — only
        the in-flight head dies with the VM.
        """
        pending, self._pending = self._pending, []
        return pending

    def start(self) -> None:
        """Begin the VM's packet loop (called at registration)."""
        if self._process is not None:
            raise RuntimeError(f"{self.vm_id} already started")
        self.nf.on_register(self.ctx)
        loop = self._run_columnar if self.manager.columnar else self._run
        self._process = self.sim.process(loop())

    # ------------------------------------------------------------------
    # Fault surface (driven by repro.faults)
    # ------------------------------------------------------------------
    def crash(self, cause: str = "crash") -> None:
        """Kill the VM thread at the current time.

        The interrupt is delivered asynchronously (at the current
        timestamp); the packet loop's cleanup then marks the VM failed
        and accounts for any in-flight descriptor.  Idempotent.
        """
        if self.failed or self._process is None or not self._process.is_alive:
            self.failed = True
            self.failure_cause = self.failure_cause or cause
            return
        self._hung = False
        self._process.interrupt(cause)

    def hang(self) -> None:
        """Wedge the VM: it stops mid-packet on its next dequeue and makes
        no further progress until crashed/terminated."""
        self._hung = True

    # ------------------------------------------------------------------
    # Packet loop
    # ------------------------------------------------------------------
    def _run(self):
        """The VM's packet loop: burst-dequeue, process, hand off.

        The thread blocks for the head descriptor, sweeps the rest of the
        burst from its ring, then serves the whole batch under a single
        occupancy charge.  ``inflight`` holds the batch head (the packet
        that dies on a crash); the tail stays in ``_pending`` until the
        batch completes, so mid-batch failures salvage it intact.  At
        ``burst_size=1`` this is event-for-event the single-packet loop.
        """
        costs: HostCosts = self.manager.costs
        try:
            while True:
                descriptor: PacketDescriptor = yield self.rx_ring.get()
                batch = [descriptor]
                if self.manager.burst_size > 1:
                    batch.extend(
                        self.rx_ring.dequeue_burst(
                            self.manager.burst_size - 1))
                self.manager.stats.record_vm_batch(len(batch))
                self.inflight = batch[0]
                self._pending = batch[1:]
                self.last_progress_ns = self.sim.now
                if self._hung:
                    # Wedged mid-packet: block on an event that never
                    # fires.  Only an interrupt (watchdog kill) resumes us.
                    yield self.sim.event()
                jobs = [(item,
                         costs.vm_service_ns
                         + self.nf.processing_cost_ns(item.packet, self.ctx))
                        for item in batch]
                work = costs.vm_batch_poll_ns + sum(cost
                                                    for _, cost in jobs)
                self._busy_until_ns = self.sim.now + work
                yield self.sim.sleep(work)
                self.busy_ns += work
                # Batch complete: emit verdicts and group the handoff by
                # delivery delay (one timer per distinct delay, not one
                # per packet).
                handoff: dict[int, list[PacketDescriptor]] = {}
                for item, _cost in jobs:
                    self.packets_processed += 1
                    item.verdict = self.nf.handle_packet(item.packet,
                                                         self.ctx)
                    item.scope = self.service_id
                    item.vm_priority = self.priority
                    # Ring hops + poll-batching pickup are latency, not
                    # occupancy: hand the descriptor to the TX tier after
                    # a non-blocking delay.  Parallel-group members are
                    # staggered by their index, modeling cache contention
                    # on the shared packet buffer.
                    delay = costs.vm_pipeline_latency_ns
                    if item.group_id is not None:
                        # Merge stage: journal this member's writes while
                        # still in the handler's event (before any other
                        # member can touch the shared packet).
                        self.manager._capture_group_writes(item)
                        delay += (costs.parallel_stagger_ns
                                  * item.group_index)
                    handoff.setdefault(delay, []).append(item)
                self._pending = []
                self.inflight = None
                self.last_progress_ns = self.sim.now
                for delay, done in handoff.items():
                    # Bare timer lane: the handoff needs no Event object.
                    self.sim.call_later(delay, self._submit_batch, done)
        except Interrupt as interrupt:
            self._on_killed(str(interrupt.cause or "crash"))

    def _run_columnar(self):
        """The columnar packet loop: same event structure as :meth:`_run`
        (head get, packet-budget sweep, one work sleep, one handoff timer
        per distinct delay), but uniform batches of an NF that implements
        :meth:`~repro.nfs.base.NetworkFunction.process_batch` are served
        with a single call and never rematerialized.  NFs without batch
        support (or with data-dependent costs) get their batches exploded
        to descriptors before the work sleep — correct, just counted in
        ``object_fallbacks``.  On a crash the whole in-flight head item
        dies: for a batch that is every packet in it, the columnar
        analogue of losing the head descriptor.
        """
        costs: HostCosts = self.manager.costs
        nf_type = type(self.nf)
        batch_ok = (
            nf_type.process_batch is not NetworkFunction.process_batch
            and nf_type.processing_cost_ns
            is NetworkFunction.processing_cost_ns)
        try:
            while True:
                head = yield self.rx_ring.get()
                items = [head]
                weight = batch_weight(head)
                if weight < self.manager.burst_size:
                    more = self.rx_ring.dequeue_packets(
                        self.manager.burst_size - weight)
                    items.extend(more)
                    for item in more:
                        weight += batch_weight(item)
                self.manager.stats.record_vm_batch(weight)
                # Explode batches the NF can't take whole *before* the
                # work sleep, so per-packet costs and crash accounting
                # see descriptors, exactly like the object loop.
                work_items: list = []
                for item in items:
                    if isinstance(item, PacketBatch) and not batch_ok:
                        work_items.extend(
                            descriptor for descriptor, _entry
                            in self.manager._explode_batch(item))
                    else:
                        work_items.append(item)
                self.inflight = work_items[0]
                self._pending = work_items[1:]
                self.last_progress_ns = self.sim.now
                if self._hung:
                    yield self.sim.event()
                jobs = []
                work = costs.vm_batch_poll_ns
                for item in work_items:
                    if isinstance(item, PacketBatch):
                        cost = ((costs.vm_service_ns
                                 + self.nf.per_packet_cost_ns) * item.count)
                    else:
                        cost = (costs.vm_service_ns
                                + self.nf.processing_cost_ns(item.packet,
                                                             self.ctx))
                    jobs.append((item, cost))
                    work += cost
                self._busy_until_ns = self.sim.now + work
                yield self.sim.sleep(work)
                self.busy_ns += work
                handoff: dict[int, list] = {}
                for item, _cost in jobs:
                    if isinstance(item, PacketBatch):
                        self.packets_processed += item.count
                        item.verdict = self.nf.handle_batch(item, self.ctx)
                        item.scope = self.service_id
                        item.vm_priority = self.priority
                        delay = costs.vm_pipeline_latency_ns
                    else:
                        self.packets_processed += 1
                        item.verdict = self.nf.handle_packet(item.packet,
                                                             self.ctx)
                        item.scope = self.service_id
                        item.vm_priority = self.priority
                        delay = costs.vm_pipeline_latency_ns
                        if item.group_id is not None:
                            self.manager._capture_group_writes(item)
                            delay += (costs.parallel_stagger_ns
                                      * item.group_index)
                    handoff.setdefault(delay, []).append(item)
                self._pending = []
                self.inflight = None
                self.last_progress_ns = self.sim.now
                for delay, done in handoff.items():
                    self.sim.call_later(delay, self._submit_batch, done)
        except Interrupt as interrupt:
            self._on_killed(str(interrupt.cause or "crash"))

    def _submit_batch(self, descriptors: list[PacketDescriptor]) -> None:
        self.manager.tx_submit_burst(descriptors, self)

    def _on_killed(self, cause: str) -> None:
        self.failed = True
        self.failure_cause = cause
        self._hung = False
        if isinstance(self.inflight, PacketBatch):
            # Columnar head item: the whole batch was in the NF's hands.
            batch, self.inflight = self.inflight, None
            count = batch.count
            self.packets_lost += count
            self.manager.stats.lost_in_nf += count
            for packet in batch.packets:
                packet.free()
            return
        if self.inflight is not None:
            # The packet the NF was holding dies with it.  A parallel-
            # group member must run group bookkeeping first: when every
            # other member already reported, the merge consumes this
            # reference and the buffer lives on — freeing it here would
            # be the use-after-release the ownership verifier exists to
            # catch.
            descriptor, self.inflight = self.inflight, None
            self.packets_lost += 1
            self.manager.stats.lost_in_nf += 1
            if not self.manager._group_member_lost(descriptor):
                descriptor.packet.free()
            self.manager._desc_free(descriptor)

    def __repr__(self) -> str:
        state = " FAILED" if self.failed else ""
        return (f"<NfVm {self.vm_id} queue={self.rx_ring.occupancy} "
                f"processed={self.packets_processed}{state}>")
