"""The NF Manager's flow table.

Rules extend OpenFlow match/action in the two ways §3.3 describes:

1. every rule is *scoped* to a Service ID or a NIC port ("we include the
   Service ID the rule applies to, or a NIC port to represent rules for new
   packets" — implemented in the real system by repurposing the input-port
   match field);
2. a rule carries *multiple* actions plus a parallel flag; the first action
   is the default, the rest are the other allowed next hops an NF may pick
   with a Send-to verdict.

Lookup semantics: exact-match rules (full 5-tuple) win over wildcard rules;
among wildcard rules higher ``priority`` wins, then higher specificity,
then most-recent insertion.  Every mutation bumps ``generation``, which is
what invalidates descriptor-cached lookups.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

from repro.dataplane.actions import Destination, Drop, ToService
from repro.net.batch import columnar_kernel
from repro.net.flow import FiveTuple, FlowMatch

_entry_ids = itertools.count()


@dataclasses.dataclass
class FlowTableEntry:
    """One scoped match/actions rule.

    ``idle_timeout_ns`` / ``hard_timeout_ns`` give OpenFlow-style
    expiry: an idle rule (no lookup hits for the idle period) or an aged
    rule (installed longer than the hard period) is removed by
    :meth:`FlowTable.expire` — how per-flow rule state is kept bounded
    under flow churn.  Zero disables a timeout.
    """

    scope: str
    match: FlowMatch
    actions: tuple[Destination, ...]
    parallel: bool = False
    priority: int = 0
    idle_timeout_ns: int = 0
    hard_timeout_ns: int = 0
    # Provenance: True when the rule was pre-populated at deploy time
    # (the proactive pipeline) rather than pulled in reactively on a
    # table miss.  Drives the manager's miss classifier
    # (proactive_hits vs reactive_hits in HostStats).
    proactive: bool = False
    entry_id: int = dataclasses.field(
        default_factory=lambda: next(_entry_ids))
    installed_at_ns: int = 0
    last_hit_ns: int = 0

    def __post_init__(self) -> None:
        if not self.actions:
            raise ValueError("a rule needs at least one action")
        if self.parallel:
            if len(self.actions) < 2:
                raise ValueError("a parallel rule needs >= 2 actions")
            if not all(isinstance(action, ToService)
                       for action in self.actions):
                raise ValueError("parallel actions must all target services")

    @property
    def default_action(self) -> Destination:
        """The first action — what a Default verdict follows."""
        return self.actions[0]

    def allows(self, destination: Destination) -> bool:
        """Whether an NF may Send-to this destination under this rule."""
        return destination in self.actions or isinstance(destination, Drop)

    def with_default(self, destination: Destination) -> FlowTableEntry:
        """A copy whose default action is ``destination``.

        The destination is moved to the front if already allowed, prepended
        otherwise (callers enforce service-graph validity).
        """
        rest = tuple(action for action in self.actions
                     if action != destination)
        return dataclasses.replace(
            self, actions=(destination,) + rest,
            entry_id=next(_entry_ids))


class FlowTable:
    """Scoped flow rules with exact-match fast path and wildcard fallback."""

    def __init__(self) -> None:
        self._exact: dict[tuple[str, FiveTuple], FlowTableEntry] = {}
        self._wildcards: dict[str, list[FlowTableEntry]] = {}
        self.generation = 0
        self.lookups = 0
        self.misses = 0
        self._insert_seq = itertools.count()
        self._wildcard_order: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def install(self, entry: FlowTableEntry) -> None:
        """Add a rule (replacing an identical-match rule in that scope)."""
        exact_key = entry.match.exact_key()
        if exact_key is not None:
            self._exact[(entry.scope, exact_key)] = entry
        else:
            rules = self._wildcards.setdefault(entry.scope, [])
            rules[:] = [rule for rule in rules if rule.match != entry.match]
            rules.append(entry)
            self._wildcard_order[entry.entry_id] = next(self._insert_seq)
        self.generation += 1

    def remove(self, scope: str, match: FlowMatch) -> bool:
        """Remove the rule with this exact (scope, match).  True if found."""
        exact_key = match.exact_key()
        if exact_key is not None:
            removed = self._exact.pop((scope, exact_key), None) is not None
        else:
            rules = self._wildcards.get(scope, [])
            before = len(rules)
            rules[:] = [rule for rule in rules if rule.match != match]
            removed = len(rules) != before
        if removed:
            self.generation += 1
        return removed

    def clear(self) -> None:
        self._exact.clear()
        self._wildcards.clear()
        self.generation += 1

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, scope: str, flow: FiveTuple,
               now_ns: int | None = None) -> FlowTableEntry | None:
        """Find the best rule for ``flow`` within ``scope``.

        ``now_ns`` (when provided) refreshes the winning rule's idle
        timer.
        """
        self.lookups += 1
        entry = self._exact.get((scope, flow))
        if entry is None:
            best_key: tuple[int, int, int] | None = None
            for rule in self._wildcards.get(scope, ()):
                if rule.match.matches(flow):
                    key = (rule.priority, rule.match.specificity,
                           self._wildcard_order[rule.entry_id])
                    if best_key is None or key > best_key:
                        entry, best_key = rule, key
        if entry is None:
            self.misses += 1
        elif now_ns is not None:
            entry.last_hit_ns = now_ns
        return entry

    @columnar_kernel
    def lookup_batch(self, scope: str,
                     flows: typing.Sequence[FiveTuple],
                     now_ns: int | None = None
                     ) -> list[FlowTableEntry | None]:
        """Resolve a burst's worth of flows against one scope.

        Per-flow side effects (``lookups``/``misses`` odometers, idle
        refresh) are identical to ``len(flows)`` sequential
        :meth:`lookup` calls in order, but the wildcard scan — the
        expensive plan resolution — runs at most once per *distinct*
        flow in the burst: duplicate keys reuse the burst-local result
        (the PR 3 cached five-tuple hash makes the dedup dictionary
        cheap).
        """
        self.lookups += len(flows)
        exact = self._exact
        resolved: dict[FiveTuple, FlowTableEntry | None] = {}
        results: list[FlowTableEntry | None] = []
        for flow in flows:
            if flow in resolved:
                entry = resolved[flow]
            else:
                entry = exact.get((scope, flow))
                if entry is None:
                    entry = self._wildcard_scan(scope, flow)
                resolved[flow] = entry
            if entry is None:
                self.misses += 1
            elif now_ns is not None:
                entry.last_hit_ns = now_ns
            results.append(entry)
        return results

    def _wildcard_scan(self, scope: str,
                       flow: FiveTuple) -> FlowTableEntry | None:
        entry: FlowTableEntry | None = None
        best_key: tuple[int, int, int] | None = None
        for rule in self._wildcards.get(scope, ()):
            if rule.match.matches(flow):
                key = (rule.priority, rule.match.specificity,
                       self._wildcard_order[rule.entry_id])
                if best_key is None or key > best_key:
                    entry, best_key = rule, key
        return entry

    # ------------------------------------------------------------------
    # Timeout-based expiry (OpenFlow idle/hard timeouts)
    # ------------------------------------------------------------------
    def expire(self, now_ns: int) -> list[FlowTableEntry]:
        """Remove rules whose idle or hard timeout has elapsed."""
        expired: list[FlowTableEntry] = []
        for entry in self.entries():
            if _is_expired(entry, now_ns):
                expired.append(entry)
        for entry in expired:
            self.remove(entry.scope, entry.match)
        return expired

    # ------------------------------------------------------------------
    # Per-flow specialisation (cross-layer message support)
    # ------------------------------------------------------------------
    def specialize(self, scope: str,
                   flow: FiveTuple) -> FlowTableEntry | None:
        """Ensure an exact rule exists for ``flow`` in ``scope``.

        Cross-layer messages like ChangeDefault apply to specific flows; if
        the current behaviour comes from a wildcard rule, it is cloned into
        an exact rule first so the modification doesn't leak to other flows.
        Returns the exact rule (or None when nothing matches the flow).
        """
        existing = self._exact.get((scope, flow))
        if existing is not None:
            return existing
        template = self.lookup(scope, flow)
        if template is None:
            return None
        exact = dataclasses.replace(
            template, match=FlowMatch.exact(flow),
            entry_id=next(_entry_ids))
        self.install(exact)
        return exact

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def entries(self, scope: str | None = None) -> list[FlowTableEntry]:
        """All rules (optionally restricted to one scope)."""
        result = [entry for key, entry in self._exact.items()
                  if scope is None or key[0] == scope]
        for rule_scope, rules in self._wildcards.items():
            if scope is None or rule_scope == scope:
                result.extend(rules)
        return result

    def scopes(self) -> set[str]:
        scopes = {key[0] for key in self._exact}
        scopes.update(self._wildcards)
        return scopes

    def __len__(self) -> int:
        return len(self._exact) + sum(len(rules) for rules
                                      in self._wildcards.values())

    def dump(self) -> str:
        """Readable table like Fig. 4's service/match/action listing."""
        lines = ["scope           match                         actions"]
        for entry in sorted(self.entries(),
                            key=lambda rule: (rule.scope, -rule.priority)):
            flag = " [parallel]" if entry.parallel else ""
            actions = ", ".join(str(action) for action in entry.actions)
            match = _describe_match(entry.match)
            lines.append(f"{entry.scope:<15} {match:<29} ({actions}){flag}")
        return "\n".join(lines)


def _is_expired(entry: FlowTableEntry, now_ns: int) -> bool:
    if (entry.hard_timeout_ns
            and now_ns - entry.installed_at_ns >= entry.hard_timeout_ns):
        return True
    if (entry.idle_timeout_ns
            and now_ns - entry.last_hit_ns >= entry.idle_timeout_ns):
        return True
    return False


def _describe_match(match: FlowMatch) -> str:
    if match == FlowMatch.any():
        return "*"
    parts = []
    if match.src_ip is not None:
        suffix = (f"/{match.src_prefix_bits}"
                  if match.src_prefix_bits < 32 else "")
        parts.append(f"src={match.src_ip}{suffix}")
    if match.dst_ip is not None:
        parts.append(f"dst={match.dst_ip}")
    if match.protocol is not None:
        parts.append(f"proto={match.protocol}")
    if match.src_port is not None:
        parts.append(f"sport={match.src_port}")
    if match.dst_port is not None:
        parts.append(f"dport={match.dst_port}")
    return ",".join(parts)
