"""Closed-form predictions from the cost model, for cross-checking the
discrete-event simulation.

Given a :class:`~repro.dataplane.costs.HostCosts` and a chain shape, these
helpers predict the unloaded round-trip latency and the per-stage
throughput ceiling.  Tests assert the DES agrees — a guard against the
simulation and the calibration drifting apart.
"""

from __future__ import annotations


from repro.dataplane.costs import HostCosts
from repro.net.packet import transmission_ns, wire_bits


def predict_rtt_ns(costs: HostCosts, sequential_vms: int = 0,
                   parallel_vms: int = 0,
                   nf_cost_ns: int = 0,
                   packet_size: int = 1000,
                   line_rate_gbps: float = 10.0,
                   first_packet: bool = True) -> int:
    """Unloaded round-trip latency for one packet through a chain.

    ``sequential_vms`` chained no-op-class VMs each charging
    ``nf_cost_ns`` of NF work; ``parallel_vms`` (if >= 2) replaces the
    chain with one fused group of that size.  ``first_packet`` includes
    the per-hop header-extract + lookup costs the descriptor cache skips
    on later packets of a flow.
    """
    if sequential_vms and parallel_vms:
        raise ValueError("choose sequential or parallel, not both")
    total = costs.wire_base_rtt_ns
    total += costs.rx_service_ns
    lookup = costs.header_extract_ns + costs.flow_lookup_ns
    if first_packet:
        total += lookup
    total += transmission_ns(packet_size, line_rate_gbps)

    vms = parallel_vms or sequential_vms
    if vms == 0:
        # Plain port-to-port forwarding: RX resolves ToPort directly.
        total += costs.tx_service_ns
        return total

    if parallel_vms >= 2:
        extra = parallel_vms - 1
        total += costs.parallel_fanout_ns * extra
        total += (costs.vm_pipeline_latency_ns
                  + costs.parallel_stagger_ns * extra)
        total += costs.vm_service_ns + nf_cost_ns
        total += costs.tx_service_ns * parallel_vms
        total += costs.parallel_merge_ns * extra
        if first_packet:
            total += lookup
        return total

    for _hop in range(sequential_vms):
        total += costs.vm_pipeline_latency_ns
        total += costs.vm_service_ns + nf_cost_ns
        total += costs.tx_service_ns
        if first_packet:
            total += lookup
    return total


def stage_rates_pps(costs: HostCosts, sequential_vms: int = 1,
                    nf_cost_ns: int = 0,
                    tx_threads: int = 2,
                    first_packet_fraction: float = 0.0
                    ) -> dict[str, float]:
    """Per-stage packet-rate ceilings (packets/second) for a chain."""
    lookup = (costs.header_extract_ns
              + costs.flow_lookup_ns) * first_packet_fraction
    rx_ns = costs.rx_service_ns + lookup
    vm_ns = costs.vm_service_ns + nf_cost_ns
    # Each packet crosses the TX tier once per VM hop; work is spread
    # over the TX threads.
    tx_ns = (costs.tx_service_ns + lookup) * max(1, sequential_vms)
    return {
        "rx": 1e9 / rx_ns,
        "vm": 1e9 / vm_ns if vm_ns else float("inf"),
        "tx": tx_threads * 1e9 / tx_ns,
    }


def predict_throughput_gbps(costs: HostCosts, packet_size: int,
                            sequential_vms: int = 1,
                            nf_cost_ns: int = 0,
                            tx_threads: int = 2,
                            line_rate_gbps: float = 10.0) -> float:
    """Bottleneck throughput for a chain at a given packet size."""
    rates = stage_rates_pps(costs, sequential_vms=sequential_vms,
                            nf_cost_ns=nf_cost_ns, tx_threads=tx_threads)
    line_pps = line_rate_gbps * 1e9 / wire_bits(packet_size)
    bottleneck = min(min(rates.values()), line_pps)
    return bottleneck * wire_bits(packet_size) / 1e9
