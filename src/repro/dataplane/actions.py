"""Forwarding destinations, NF verdicts, and parallel conflict resolution.

The paper gives NFs three per-packet actions (§3.4): *Discard*, *Send to*
(a NIC port or a Service ID), and *Default* (follow the flow table's first
action).  When several VMs process one packet in parallel, their verdicts
may conflict; §4.2 resolves conflicts by action priority (drop beats
transmit-out beats default) or by per-VM priority.
"""

from __future__ import annotations

import dataclasses
import enum
import typing


@dataclasses.dataclass(frozen=True)
class ToService:
    """Forward to the NF registered under a Service ID."""

    service_id: str

    def __str__(self) -> str:
        return f"svc:{self.service_id}"


@dataclasses.dataclass(frozen=True)
class ToPort:
    """Forward out a NIC port."""

    port: str

    def __str__(self) -> str:
        return f"port:{self.port}"


@dataclasses.dataclass(frozen=True)
class Drop:
    """Discard the packet (used as an explicit rule action)."""

    def __str__(self) -> str:
        return "drop"


Destination = ToService | ToPort | Drop


class NfVerdict(enum.Enum):
    """What an NF asked the NF Manager to do with a finished packet."""

    DISCARD = "discard"
    SEND = "send"
    DEFAULT = "default"


@dataclasses.dataclass(frozen=True)
class Verdict:
    """An NF's completed-packet request: a kind plus optional destination."""

    kind: NfVerdict
    destination: Destination | None = None

    def __post_init__(self) -> None:
        if self.kind is NfVerdict.SEND and self.destination is None:
            raise ValueError("SEND verdict needs a destination")
        if self.kind is not NfVerdict.SEND and self.destination is not None:
            raise ValueError(f"{self.kind} verdict takes no destination")

    @classmethod
    def discard(cls) -> Verdict:
        return cls(NfVerdict.DISCARD)

    @classmethod
    def default(cls) -> Verdict:
        return cls(NfVerdict.DEFAULT)

    @classmethod
    def send_to_service(cls, service_id: str) -> Verdict:
        return cls(NfVerdict.SEND, ToService(service_id))

    @classmethod
    def send_to_port(cls, port: str) -> Verdict:
        return cls(NfVerdict.SEND, ToPort(port))


# Action-priority policy: drop > transmit out a port > send to a service >
# default (§4.2 names drop and transmit-out explicitly; service redirects
# express a deliberate NF decision so they outrank the passive default).
_ACTION_RANK = {
    NfVerdict.DISCARD: 0,
    NfVerdict.SEND: 1,
    NfVerdict.DEFAULT: 2,
}


def resolve_parallel_verdicts(
        verdicts: typing.Sequence[tuple[int, Verdict]],
        policy: str = "action_priority") -> Verdict:
    """Pick the winning verdict for a packet processed by parallel VMs.

    ``verdicts`` is a list of ``(vm_priority, verdict)`` pairs, lower
    vm_priority = more important.  ``policy`` is ``"action_priority"`` or
    ``"vm_priority"``.
    """
    if not verdicts:
        raise ValueError("no verdicts to resolve")
    if policy == "action_priority":
        def rank(pair: tuple[int, Verdict]) -> tuple[int, int, int]:
            vm_priority, verdict = pair
            port_first = 0 if isinstance(verdict.destination, ToPort) else 1
            return (_ACTION_RANK[verdict.kind], port_first, vm_priority)
        return min(verdicts, key=rank)[1]
    if policy == "vm_priority":
        return min(verdicts, key=lambda pair: pair[0])[1]
    raise ValueError(f"unknown conflict policy: {policy!r}")
