"""QoS: strict-priority egress scheduling.

The paper's motivation repeatedly names QoS as data-plane functionality
(middleboxes "manipulate their routing, content, and QoS"; the ant-flow
use case is a QoS system).  This module adds the egress half: a
:class:`PriorityNicPort` serves multiple transmit queues in strict
priority order, so marked traffic (DSCP, set by the
:class:`~repro.nfs.qos.DscpMarker` NF) overtakes bulk traffic at a
congested link instead of queueing behind it.
"""

from __future__ import annotations

from repro.dataplane.manager import NicPort
from repro.net.packet import Packet, transmission_ns
from repro.net.qos import (
    DSCP_ASSURED,
    DSCP_BEST_EFFORT,
    DSCP_EXPEDITED,
    PRIORITY_ANNOTATION,
    dscp_to_priority,
)
from repro.sim.simulator import Simulator
from repro.sim.store import Store

__all__ = [
    # re-exported marking vocabulary (repro.net.qos)
    "DSCP_ASSURED",
    "DSCP_BEST_EFFORT",
    "DSCP_EXPEDITED",
    "PRIORITY_ANNOTATION",
    "dscp_to_priority",
    "PriorityNicPort",
]


class PriorityNicPort(NicPort):
    """A NIC port with strict-priority transmit queues.

    The drain process always serves the lowest-numbered non-empty queue.
    Queue choice per packet: the ``qos_priority`` annotation if present,
    else the packet's IP DSCP field.
    """

    def __init__(self, sim: Simulator, name: str,
                 line_rate_gbps: float = 10.0,
                 rx_frames: int = 2048,
                 priority_levels: int = 3,
                 queue_frames: int = 4096) -> None:
        if priority_levels < 2:
            raise ValueError("need at least two priority levels")
        self._levels = priority_levels
        self._queues = [Store(sim, capacity=queue_frames)
                        for _ in range(priority_levels)]
        self._kick = Store(sim)
        self.tx_dropped = 0
        self.per_priority_tx = [0] * priority_levels
        super().__init__(sim, name, line_rate_gbps=line_rate_gbps,
                         rx_frames=rx_frames)
        # The base port's wire drain is a timer state machine armed by
        # NicPort.transmit(); priority queues need the scan-all-levels
        # loop instead, so this subclass runs its own drain process.
        sim.process(self._drain())

    @property
    def levels(self) -> int:
        return self._levels

    def classify(self, packet: Packet) -> int:
        priority = packet.annotations.get(PRIORITY_ANNOTATION)
        if priority is not None:
            return max(0, min(self._levels - 1, int(priority)))
        dscp = packet.ip.dscp if packet.ip is not None else 0
        return dscp_to_priority(dscp, self._levels)

    def transmit(self, packet: Packet) -> None:
        level = self.classify(packet)
        if self._queues[level].try_put(packet):
            self._kick.try_put(None)
        else:
            self.tx_dropped += 1

    def _drain(self):
        """Strict priority: always pick the most urgent waiting frame."""
        while True:
            yield self._kick.get()
            packet = None
            level = -1
            for index, queue in enumerate(self._queues):
                candidate = queue.try_get()
                if candidate is not None:
                    packet, level = candidate, index
                    break
            if packet is None:
                continue
            yield self.sim.timeout(
                transmission_ns(packet.size, self.line_rate_gbps))
            self.tx_packets += 1
            self.tx_bytes += packet.size
            self.per_priority_tx[level] += 1
            if self.on_egress is not None:
                self.on_egress(packet)
            else:
                yield self.egress.put(packet)
