"""Load balancing across same-service VM replicas (paper §3.3, §4.2).

Three policies:

- ``ROUND_ROBIN`` — rotate blindly (the strawman §4.2 argues against);
- ``LEAST_QUEUE`` — pick the replica with the fewest occupied ring slots
  (costs one queue scan, 15 ns, per decision);
- ``FLOW_HASH`` — hash the 5-tuple so all packets of a flow share a replica
  (required for NFs keeping temporal per-flow state).
"""

from __future__ import annotations

import enum
import typing

from repro.net.flow import FiveTuple

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.dataplane.vm import NfVm


class LoadBalancePolicy(enum.Enum):
    ROUND_ROBIN = "round_robin"
    LEAST_QUEUE = "least_queue"
    FLOW_HASH = "flow_hash"


class ServiceLoadBalancer:
    """Chooses a VM replica for each packet of a service."""

    def __init__(self,
                 policy: LoadBalancePolicy = LoadBalancePolicy.LEAST_QUEUE
                 ) -> None:
        self.policy = policy
        self._rr_position = 0
        self.decisions = 0

    def choose(self, replicas: typing.Sequence["NfVm"],
               flow: FiveTuple) -> tuple["NfVm", int]:
        """Pick a replica.  Returns (vm, extra_cost_ns) for the decision."""
        if not replicas:
            raise ValueError("no replicas to balance across")
        self.decisions += 1
        if len(replicas) == 1:
            return replicas[0], 0
        if self.policy is LoadBalancePolicy.ROUND_ROBIN:
            vm = replicas[self._rr_position % len(replicas)]
            self._rr_position += 1
            return vm, 0
        if self.policy is LoadBalancePolicy.LEAST_QUEUE:
            vm = min(replicas, key=lambda replica: replica.rx_ring.occupancy)
            return vm, 15  # one queue scan (§5.1: 15 ns)
        if self.policy is LoadBalancePolicy.FLOW_HASH:
            vm = replicas[flow.hash_bucket(len(replicas))]
            return vm, 0
        raise AssertionError(f"unhandled policy {self.policy}")
