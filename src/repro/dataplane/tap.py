"""Packet taps: pcap-style capture at host ports.

A tap observes frames at a NIC port and records them as
:class:`~repro.workloads.trace.TraceRecord` rows, so a captured stream
can be saved to CSV and replayed later with
:class:`~repro.workloads.trace.TraceReplayer` — capture on one host,
replay against another configuration, compare behaviour.
"""

from __future__ import annotations

import typing

from repro.dataplane.host import NfvHost
from repro.net.packet import Packet
from repro.sim.simulator import Simulator
from repro.workloads.trace import TraceRecord


class PacketTap:
    """Records frames seen at one observation point."""

    def __init__(self, sim: Simulator, name: str = "tap",
                 max_records: int = 1_000_000) -> None:
        if max_records <= 0:
            raise ValueError("max_records must be positive")
        self.sim = sim
        self.name = name
        self.max_records = max_records
        self.records: list[TraceRecord] = []
        self.truncated = 0

    def observe(self, packet: Packet) -> None:
        if len(self.records) >= self.max_records:
            self.truncated += 1
            return
        self.records.append(TraceRecord(
            timestamp_ns=self.sim.now, flow=packet.flow,
            size=packet.size, payload=packet.payload))

    def __len__(self) -> int:
        return len(self.records)

    def to_trace(self) -> list[TraceRecord]:
        """The capture, rebased so the first frame is at t=0."""
        if not self.records:
            return []
        base = self.records[0].timestamp_ns
        return [TraceRecord(timestamp_ns=record.timestamp_ns - base,
                            flow=record.flow, size=record.size,
                            payload=record.payload)
                for record in self.records]

    # ------------------------------------------------------------------
    # Attachment helpers
    # ------------------------------------------------------------------
    @classmethod
    def on_egress(cls, sim: Simulator, host: NfvHost,
                  port_name: str, **kw: typing.Any) -> PacketTap:
        """Tap a port's egress, chaining any existing observer."""
        tap = cls(sim, name=f"{host.name}:{port_name}/egress", **kw)
        port = host.port(port_name)
        downstream = port.on_egress

        def observe_then_forward(packet: Packet) -> None:
            tap.observe(packet)
            if downstream is not None:
                downstream(packet)

        port.on_egress = observe_then_forward
        return tap

    @classmethod
    def on_ingress(cls, sim: Simulator, host: NfvHost,
                   port_name: str, **kw: typing.Any) -> PacketTap:
        """Tap frames *accepted* into a port's RX ring."""
        tap = cls(sim, name=f"{host.name}:{port_name}/ingress", **kw)
        port = host.port(port_name)
        original_receive = port.receive

        def receive_and_observe(packet: Packet) -> bool:
            accepted = original_receive(packet)
            if accepted:
                tap.observe(packet)
            return accepted

        port.receive = receive_and_observe  # type: ignore[method-assign]
        return tap
