"""The NF Manager: the per-host data plane engine (paper §4.1–4.2).

One :class:`NfManager` runs on each SDNFV host.  It owns:

- the host's **flow table** (Service-ID-scoped rules from the SDN tier),
- **RX threads** (one per NIC port) that classify arriving packets and
  dispatch descriptors into VM rings,
- **TX threads** that collect completed descriptors from VMs, resolve the
  NF's verdict against the flow table, and forward / drop / hand off,
- a **Flow Controller thread** that buffers flow-table misses and asks the
  SDN controller for rules asynchronously (31 ms off the critical path),
- a **management loop** applying cross-layer NF messages (SkipMe /
  RequestMe / ChangeDefault / Message), optionally validated by the SDNFV
  Application first,
- per-service **load balancers** and the **parallel processing** machinery
  (descriptor fan-out, reference counting, verdict merge).
"""

from __future__ import annotations

import collections
import dataclasses
import itertools
import typing

from repro.dataplane.actions import (
    Destination,
    Drop,
    NfVerdict,
    ToPort,
    ToService,
    Verdict,
    resolve_parallel_verdicts,
)
from repro.dataplane.costs import HostCosts
from repro.dataplane.descriptors import PacketDescriptor
from repro.dataplane.flow_table import FlowTable, FlowTableEntry
from repro.dataplane.load_balancer import LoadBalancePolicy, ServiceLoadBalancer
from repro.dataplane.messages import (
    ChangeDefault,
    NfMessage,
    RequestMe,
    SkipMe,
    UserMessage,
)
from repro.dataplane.rings import RingBuffer, batch_weight
from repro.dataplane.stats import HostStats
from repro.dataplane.vm import NfVm
from repro.net.batch import PacketBatch
from repro.net.flow import FiveTuple, FlowMatch
from repro.net.mempool import DEFAULT_POOL_SIZE, PacketPool
from repro.net.packet import Packet, transmission_ns
from repro.nfs.base import NetworkFunction
from repro.sim.events import Event
from repro.sim.randomness import RandomStreams
from repro.sim.simulator import Simulator
from repro.sim.store import Store
from repro.sim.units import MS

_group_ids = itertools.count()

# Bound on the per-flow lookup-plan cache (entries, not bytes).
_PLAN_CACHE_LIMIT = 65536

# DPDK's burst model (§4.1): RX/TX threads and NFs move packets in
# batches of up to 32 descriptors per poll.
DEFAULT_BURST_SIZE = 32

# Bound on the descriptor free list (wrappers, not packets).
_DESC_POOL_LIMIT = 4096


@dataclasses.dataclass(frozen=True)
class ControlPlanePolicy:
    """Client-side hardening for the manager → SDN controller channel.

    §3 argues hosts must keep making local decisions when the controller
    is slow or unreachable.  With a policy attached, each flow request
    gets a ``timeout_ns`` deadline; on timeout the manager retries with
    capped exponential backoff up to ``max_attempts`` total tries, then
    gives up and degrades (drop or :attr:`NfManager.miss_fallback`)
    instead of blocking the miss queue forever.
    """

    timeout_ns: int = 100 * MS
    max_attempts: int = 3
    backoff_base_ns: int = 10 * MS
    backoff_cap_ns: int = 500 * MS

    def __post_init__(self) -> None:
        if self.timeout_ns <= 0:
            raise ValueError("timeout must be positive")
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.backoff_base_ns < 0 or self.backoff_cap_ns < 0:
            raise ValueError("backoff must be non-negative")

    def backoff_ns(self, attempt: int) -> int:
        """Delay before retry number ``attempt + 1`` (0-based, capped)."""
        return min(self.backoff_cap_ns, self.backoff_base_ns * (2 ** attempt))


class NicPort:
    """A NIC port: a bounded RX queue and a line-rate-limited egress.

    The RX queue is bounded like a real NIC descriptor ring: when the RX
    thread falls behind, arriving frames are dropped and counted in
    ``rx_dropped`` — this is what makes "max achievable throughput"
    measurable (Fig. 7).
    """

    def __init__(self, sim: Simulator, name: str,
                 line_rate_gbps: float = 10.0,
                 rx_frames: int = 2048,
                 stats: HostStats | None = None) -> None:
        self.sim = sim
        self.name = name
        self.line_rate_gbps = line_rate_gbps
        self.rx_dropped = 0
        self.link_dropped = 0
        # Host-level stats sink: NIC-tier drops are mirrored here so the
        # manager's summary sees frames it never got to touch.
        self.stats = stats
        self.link_up = True
        self._link_restored: Event | None = None
        # The RX ring recycles its poll events through the kernel free
        # list (its only consumer is the internal RX loop); the egress
        # store is a public sink, so it allocates.
        self.ingress = Store(sim, capacity=rx_frames, recycle=True)
        self.egress = Store(sim)
        self.tx_packets = 0
        self.tx_bytes = 0
        # Optional sink: when set, transmitted packets are delivered to the
        # callback instead of accumulating in the egress store.
        self.on_egress: typing.Callable[[Packet], None] | None = None
        # Wire serialization is a bare timer state machine, not a
        # generator process: transmit() arms it, each frame costs exactly
        # one timer per stage, and the steady-state TX path never touches
        # Event or generator machinery.
        self._tx_backlog: collections.deque[Packet] = collections.deque()
        self._tx_busy = False
        self._tx_ns_cache: dict[int, int] = {}

    def set_link(self, up: bool) -> None:
        """Flip link state (LinkFlap faults).  While down, arriving frames
        are dropped and queued egress frames wait for the link."""
        if up == self.link_up:
            return
        self.link_up = up
        if up:
            restored, self._link_restored = self._link_restored, None
            if restored is not None:
                restored.succeed()
        else:
            self._link_restored = Event(self.sim)

    def transmit(self, packet: Packet) -> None:
        """Queue a frame for transmission (called by TX threads)."""
        if self._tx_busy:
            self._tx_backlog.append(packet)
        else:
            self._tx_busy = True
            self.sim.call_later(0, self._tx_start, packet)

    def _tx_start(self, packet: Packet) -> None:
        """Begin serializing one frame onto the wire at the line rate."""
        if not self.link_up:
            self._link_restored.callbacks.append(
                lambda _event, packet=packet: self._tx_start(packet))
            return
        tx_ns = self._tx_ns_cache.get(packet.size)
        if tx_ns is None:
            tx_ns = transmission_ns(packet.size, self.line_rate_gbps)
            self._tx_ns_cache[packet.size] = tx_ns
        self.sim.call_later(tx_ns, self._tx_done, packet)

    def _tx_done(self, packet: Packet) -> None:
        self.tx_packets += 1
        self.tx_bytes += packet.size
        if self.on_egress is not None:
            self.on_egress(packet)
            self._tx_next()
        else:
            self.egress.put(packet).callbacks.append(self._tx_after_put)

    def _tx_after_put(self, _event: Event) -> None:
        self._tx_next()

    def _tx_next(self) -> None:
        if self._tx_backlog:
            self.sim.call_later(0, self._tx_start, self._tx_backlog.popleft())
        else:
            self._tx_busy = False

    def receive(self, packet: Packet) -> bool:
        """Deliver an arriving frame into the RX queue (drop when full or
        while the link is down)."""
        if not self.link_up:
            self.link_dropped += 1
            if self.stats is not None:
                self.stats.nic_link_dropped += 1
            if packet._pool is not None:
                packet.free()
            return False
        if self.ingress.try_put(packet):
            return True
        self.rx_dropped += 1
        if self.stats is not None:
            self.stats.nic_rx_dropped += 1
        if packet._pool is not None:
            packet.free()
        return False

    def rx_burst(self, max_n: int) -> list[Packet]:
        """Non-blocking poll: up to ``max_n`` frames already waiting.

        The RX thread blocks for the first frame of a burst, then sweeps
        whatever else has accumulated in the descriptor ring — DPDK's
        ``rte_eth_rx_burst`` shape.
        """
        frames: list[Packet] = []
        while len(frames) < max_n:
            packet = self.ingress.try_get()
            if packet is None:
                break
            frames.append(packet)
        return frames

    def rx_burst_into(self, batch: PacketBatch, max_n: int) -> None:
        """Columnar variant of :meth:`rx_burst`: sweep waiting frames
        straight into ``batch`` without building an intermediate list."""
        store = self.ingress
        for _ in range(max_n):
            frame = store.try_get()
            if frame is None:
                break
            batch.append(frame)


#: Sentinel for "this field/annotation key was absent at fan-out time".
_UNSET = object()

#: Header fields the merge journal may snapshot and re-apply.  Matches
#: ``repro.analysis.profiles.MERGEABLE_FIELDS`` (kept literal here so the
#: data plane never imports the analysis package); five-tuple fields are
#: excluded by construction — rewriting the flow key mid-group would
#: change what lookups and balancers see.
_MERGEABLE_FIELDS = ("dscp", "ttl", "payload")


def _read_merge_field(packet: Packet, field: str):
    if field == "payload":
        return packet.payload
    ip = packet.ip
    return _UNSET if ip is None else getattr(ip, field)


def _write_merge_field(packet: Packet, field: str, value) -> None:
    if value is _UNSET:
        return
    if field == "payload":
        packet.payload = value
        return
    ip = packet.ip
    if ip is not None and getattr(ip, field) != value:
        packet.ip = dataclasses.replace(ip, **{field: value})


class _ParallelGroup:
    """Bookkeeping for one packet fanned out to parallel member VMs.

    Legacy groups (read-only fusion, rule-based fan-out) carry no
    ``write_plan`` and behave exactly as before.  Profile-driven groups
    additionally run the *merge stage*: at fan-out the group snapshots
    every field and annotation key any member is allowed to write; as
    each member's handler returns, the VM loop calls :meth:`capture`,
    journaling the fields that member actually changed; the finalizer
    calls :meth:`apply`, replaying the journal in graph order so the
    merged packet's state is deterministic — last graph-order writer
    wins — regardless of the members' execution interleaving.
    """

    def __init__(self, expected: int, exit_scope: str,
                 write_plan: typing.Mapping[
                     str, tuple[tuple[str, ...], tuple[str, ...]]]
                 | None = None,
                 packet: Packet | None = None) -> None:
        self.expected = expected
        self.exit_scope = exit_scope
        self.verdicts: list[tuple[int, Verdict]] = []
        self.write_plan = write_plan
        self._field_snapshot: dict[str, typing.Any] = {}
        self._ann_snapshot: dict[str, typing.Any] = {}
        #: (group_index, kind, name, value) records; kind is "field"/"ann".
        self._journal: list[tuple[int, str, str, typing.Any]] = []
        if write_plan is not None and packet is not None:
            for fields, keys in write_plan.values():
                for field in fields:
                    if field not in self._field_snapshot:
                        self._field_snapshot[field] = (
                            _read_merge_field(packet, field))
                for key in keys:
                    if key not in self._ann_snapshot:
                        self._ann_snapshot[key] = (
                            packet.annotations.get(key, _UNSET))

    def member_done(self, descriptor: PacketDescriptor) -> bool:
        """Record one member's verdict; True when the group is complete."""
        assert descriptor.verdict is not None
        self.verdicts.append((descriptor.vm_priority, descriptor.verdict))
        return len(self.verdicts) >= self.expected

    def member_lost(self) -> bool:
        """A member was dropped before reaching its VM."""
        self.expected -= 1
        return self.expected > 0 and len(self.verdicts) >= self.expected

    def capture(self, service_id: str, group_index: int,
                packet: Packet) -> None:
        """Journal the writes one member just made to the shared packet.

        Called by the VM loop in the same event as the handler, so the
        values read here are exactly what this member left behind.  Only
        fields in the member's declared write set are examined, and only
        values differing from the fan-out snapshot are journaled — a
        member that declared a write but didn't perform it contributes
        nothing (it must not mask an earlier graph-order writer).
        """
        if self.write_plan is None:
            return
        plan = self.write_plan.get(service_id)
        if plan is None:
            return
        fields, keys = plan
        for field in fields:
            value = _read_merge_field(packet, field)
            if value != self._field_snapshot.get(field, _UNSET):
                self._journal.append((group_index, "field", field, value))
        for key in keys:
            value = packet.annotations.get(key, _UNSET)
            if value != self._ann_snapshot.get(key, _UNSET):
                self._journal.append((group_index, "ann", key, value))

    def apply(self, packet: Packet) -> None:
        """Replay the journal in graph order (ascending group index)."""
        if not self._journal:
            return
        for _index, kind, name, value in sorted(
                self._journal, key=lambda record: record[0]):
            if kind == "field":
                _write_merge_field(packet, name, value)
            elif value is _UNSET:
                packet.annotations.pop(name, None)
            else:
                packet.annotations[name] = value


class NfManager:
    """The data plane manager for one SDNFV host."""

    def __init__(self, sim: Simulator, name: str = "host0",
                 costs: HostCosts | None = None,
                 controller: typing.Any | None = None,
                 tx_threads: int = 2,
                 load_balance: LoadBalancePolicy = (
                     LoadBalancePolicy.LEAST_QUEUE),
                 conflict_policy: str = "action_priority",
                 lookup_cache: bool = True,
                 streams: RandomStreams | None = None,
                 control_policy: ControlPlanePolicy | None = None,
                 miss_fallback: Destination | None = None,
                 burst_size: int = DEFAULT_BURST_SIZE,
                 pool_size: int = DEFAULT_POOL_SIZE,
                 columnar: bool = False) -> None:
        if tx_threads < 1:
            raise ValueError("need at least one TX thread")
        if burst_size < 1:
            raise ValueError("burst size must be at least 1")
        if pool_size < 0:
            raise ValueError("pool size must be non-negative")
        self.sim = sim
        self.name = name
        self.costs = costs or HostCosts()
        # How many descriptors each RX poll / VM poll / TX drain moves at
        # once (§4.1's DPDK burst model).  1 degenerates to the strict
        # one-descriptor-per-event pipeline.
        self.burst_size = burst_size
        # Columnar burst kernel: bursts move as struct-of-arrays
        # PacketBatch items (packet-weighted rings, per-batch cost
        # accounting, burst flow lookups) with per-packet descriptor
        # fallback on slow paths.  Observables are byte-identical to the
        # object pipeline; False keeps the legacy loops untouched.
        self.columnar = columnar
        self.controller = controller
        self.conflict_policy = conflict_policy
        self.lookup_cache = lookup_cache
        # Control-plane hardening: None means wait forever (legacy
        # behaviour); a policy adds timeout + retry + bounded budget.
        self.control_policy = control_policy
        # Where flows go when the control plane cannot answer: None drops
        # them; a Destination (typically the exit port — the service
        # graph's outermost default edge) forwards them unprocessed.
        self.miss_fallback = miss_fallback
        self.streams = streams or RandomStreams(seed=0)
        self.flow_table = FlowTable()
        self.stats = HostStats()
        # The host's rte_mempool analogue: packet generators and sinks
        # allocate/reclaim buffers through it.  0 disables pooling (every
        # packet is a plain heap allocation — the golden-parity baseline).
        self.packet_pool: PacketPool | None = (
            PacketPool(pool_size, stats=self.stats) if pool_size else None)
        # Free list of descriptor wrappers (the mbuf-descriptor analogue):
        # RX allocation and TX/drop retirement recycle through it.
        self._desc_pool: list[PacketDescriptor] = []
        self.ports: dict[str, NicPort] = {}
        # Per-manager VM id mint (see NfVm.__init__): local registration
        # order, never global creation order, names a VM.
        self._vm_ids = itertools.count()
        self.vms_by_service: dict[str, list[NfVm]] = {}
        self._balancers: dict[str, ServiceLoadBalancer] = {}
        self._lb_policy = load_balance
        self._tx_queues = [RingBuffer(sim, name=f"{name}/tx{i}", slots=4096,
                                      columnar=columnar, stats=self.stats)
                           for i in range(tx_threads)]
        self._vm_tx_assignment: dict[str, RingBuffer] = {}
        self._next_tx = 0
        self._groups: dict[int, _ParallelGroup] = {}
        self._parallel_chains: dict[str, list[str]] = {}
        # Merge plans for profile-driven chains, keyed like the chains
        # (first member): service -> (mergeable fields, annotation keys)
        # that member may write.  Absent for legacy read-only chains.
        self._chain_merge_plans: dict[
            str, dict[str, tuple[tuple[str, ...], tuple[str, ...]]]] = {}
        self._plans: dict[FiveTuple, dict] = {}
        # Miss classifier (§4.1 hybrid pipeline): flows whose first
        # contact with this host has been classified as proactive-hit /
        # reactive-hit / reactive-miss.  A dict used as an insertion-
        # ordered set so eviction matches the plan cache's FIFO idiom.
        self._classified: dict[FiveTuple, None] = {}
        self._fc_queue = Store(sim, recycle=True)
        self._pending_flows: dict[tuple[str, FiveTuple],
                                  list[PacketDescriptor]] = {}
        self._mgmt_queue = Store(sim, recycle=True)
        self.policy_validator: typing.Any | None = None
        self.message_handlers: dict[
            str, typing.Callable[[UserMessage], None]] = {}
        # Where UserMessages without a local handler go — the SDNFV
        # Application attaches itself here (Fig. 2 step 5).
        self.user_message_sink: typing.Callable[
            [str, UserMessage], None] | None = None
        self.uninterpreted_messages: list[UserMessage] = []
        self.rejected_messages = 0
        # Optional structured observability (repro.metrics.eventlog).
        self.event_log: typing.Any | None = None
        tx_loop = self._tx_loop_columnar if columnar else self._tx_loop
        for queue in self._tx_queues:
            sim.process(tx_loop(queue))
        sim.process(self._fc_loop())
        sim.process(self._mgmt_loop())

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_port(self, name: str, line_rate_gbps: float = 10.0) -> NicPort:
        """Attach a NIC port and start its RX thread."""
        if name in self.ports:
            raise ValueError(f"duplicate port {name!r}")
        port = NicPort(self.sim, name, line_rate_gbps, stats=self.stats)
        self.ports[name] = port
        rx_loop = self._rx_loop_columnar if self.columnar else self._rx_loop
        self.sim.process(rx_loop(port))
        return port

    def register_vm(self, nf: NetworkFunction, ring_slots: int = 512,
                    priority: int = 0) -> NfVm:
        """The §3.3 handshake: a VM advertises its Service ID (and whether
        it is read-only) and gets its communication channels set up."""
        vm = NfVm(self, nf, ring_slots=ring_slots, priority=priority)
        self._check_parallel_membership(vm)
        self.vms_by_service.setdefault(vm.service_id, []).append(vm)
        self._balancers.setdefault(vm.service_id,
                                   ServiceLoadBalancer(self._lb_policy))
        self._vm_tx_assignment[vm.vm_id] = (
            self._tx_queues[self._next_tx % len(self._tx_queues)])
        self._next_tx += 1
        vm.start()
        if self.event_log is not None:
            self.event_log.record("vm_register", host=self.name,
                                  service=vm.service_id, vm=vm.vm_id,
                                  read_only=vm.read_only)
        return vm

    def unregister_vm(self, vm: NfVm) -> None:
        """Remove a VM from load balancing (it stops receiving packets)."""
        replicas = self.vms_by_service.get(vm.service_id, [])
        if vm in replicas:
            replicas.remove(vm)

    # ------------------------------------------------------------------
    # Failure handling (§3.1: "respond to failure or overload")
    # ------------------------------------------------------------------
    def fail_vm(self, vm: NfVm, cause: str = "crash") -> dict[str, int]:
        """Take a dead or wedged VM out of service and salvage its queue.

        The VM is unregistered, its thread killed (idempotent), and every
        descriptor still in its RX ring is re-dispatched: to a surviving
        replica when one exists, else along the dead service's own default
        edge (graceful degradation), else dropped with a count.  Returns
        the salvage accounting.
        """
        service = vm.service_id
        self.unregister_vm(vm)
        # Salvage order matters: the batch the VM already dequeued (but
        # had not processed) is older than anything still in its ring.
        drained = vm.take_pending_batch() + vm.rx_ring.drain()
        if self.columnar:
            # Batches salvage as rematerialized descriptors so the
            # requeue/degrade/drop accounting below stays per-packet.
            flattened: list[PacketDescriptor] = []
            for item in drained:
                if isinstance(item, PacketBatch):
                    flattened.extend(
                        descriptor for descriptor, _entry
                        in self._explode_batch(item))
                else:
                    flattened.append(item)
            drained = flattened
        vm.crash(cause)
        self.stats.failed_vms += 1
        survivors = self.vms_by_service.get(service, ())
        requeued = degraded = lost = 0
        for descriptor in drained:
            if survivors:
                self.stats.requeued_packets += 1
                requeued += 1
                self._route(descriptor, ToService(service))
            elif self._bypass_dead_service(descriptor, service):
                degraded += 1
            else:
                lost += 1
                self._drop(descriptor, "dropped_no_vm")
        if self.event_log is not None:
            self.event_log.record("nf_failure", host=self.name,
                                  service=service, vm=vm.vm_id, cause=cause,
                                  requeued=requeued, degraded=degraded,
                                  lost=lost)
        return {"requeued": requeued, "degraded": degraded, "lost": lost}

    def _bypass_dead_service(self, descriptor: PacketDescriptor,
                             service: str) -> bool:
        """Route a descriptor as if ``service`` had returned Default —
        the service graph's default edge is the fallback path."""
        entry = self.flow_table.lookup(service, descriptor.packet.flow,
                                       now_ns=self.sim.now)
        if entry is None or entry.default_action == ToService(service):
            return False
        self.stats.degraded_packets += 1
        descriptor.scope = service
        self._follow_entry(descriptor, entry, entry.default_action)
        return True

    def quarantine_service(self, service: str
                           ) -> list[FlowTableEntry] | None:
        """Reroute traffic around a service with no live VMs.

        Every rule whose *default* leads to ``service`` is rewritten to the
        service's own default edge, so flows degrade gracefully instead of
        blackholing while a replacement boots.  Returns the displaced
        rules so :meth:`restore_service` can reinstate them — entries
        pointing at the dead service are rewritten, not leaked.
        """
        bypass = ToService(service)
        fallback = self._scope_default(service, FlowMatch.any())
        if fallback is None or fallback == bypass:
            return None
        displaced: list[FlowTableEntry] = []
        for scope in list(self.flow_table.scopes()):
            if scope == service:
                continue
            for entry in list(self.flow_table.entries(scope)):
                if entry.parallel:
                    continue  # fan-out groups lose the member, not the flow
                if entry.default_action == bypass:
                    displaced.append(entry)
                    self.install_rule(entry.with_default(fallback))
        if self.event_log is not None:
            self.event_log.record("service_quarantined", host=self.name,
                                  service=service, rewritten=len(displaced),
                                  fallback=str(fallback))
        return displaced

    def restore_service(self, service: str,
                        displaced: typing.Iterable[FlowTableEntry]) -> None:
        """Reinstate rules displaced by :meth:`quarantine_service` once a
        replacement VM is serving again."""
        count = 0
        for entry in displaced:
            self.install_rule(entry)
            count += 1
        if self.event_log is not None:
            self.event_log.record("service_restored", host=self.name,
                                  service=service, reinstated=count)

    def install_rule(self, entry: FlowTableEntry) -> None:
        """Install a flow rule, enforcing the read-only parallel rule."""
        if entry.parallel:
            self._validate_parallel_rule(entry)
        entry.installed_at_ns = self.sim.now
        entry.last_hit_ns = self.sim.now
        self.flow_table.install(entry)
        if self.event_log is not None:
            self.event_log.record("rule_install", host=self.name,
                                  scope=entry.scope,
                                  default=str(entry.default_action))

    def start_rule_expiry(self, interval_ns: int) -> None:
        """Periodically evict rules whose idle/hard timeouts elapsed.

        Keeps per-flow rule state bounded under flow churn (the concern
        behind §3.4's discussion of pre-populated wildcard rules and
        flow-table size).
        """
        if interval_ns <= 0:
            raise ValueError("expiry interval must be positive")
        self.sim.process(self._expiry_loop(interval_ns))

    def _expiry_loop(self, interval_ns: int):
        while True:
            yield self.sim.sleep(interval_ns)
            self.flow_table.expire(self.sim.now)

    def register_parallel_chain(
            self, services: typing.Sequence[str],
            profiles: typing.Mapping[str, typing.Any] | None = None,
    ) -> None:
        """Fuse a run of adjacent services into a parallel group.

        §3.3: when an NF registers as read-only, the manager "uses this
        information to determine if the service can be run in parallel with
        any adjacent NFs in the service graph".  After registration, any
        packet routed to ``services[0]`` is fanned out to every member at
        once; the merged verdict continues from the last member's rules.

        Without ``profiles`` (the legacy path) every member's VM must be
        declared read-only.  With ``profiles`` — a mapping of service id
        to its :class:`~repro.analysis.profiles.ActionProfile` — members
        may *write* as long as the profiles are pairwise conflict-free
        (this is what ``SdnfvApp.deploy(auto_parallel=True)`` registers);
        the group then runs the merge stage, journaling each member's
        writes and replaying them in graph order at finalization.
        Conflicting profiles are rejected here at registration, the same
        condition lint rule NF003 flags statically.
        """
        if len(services) < 2:
            raise ValueError("a parallel chain needs >= 2 services")
        if profiles is None:
            for service_id in services:
                for vm in self.vms_by_service.get(service_id, ()):
                    if not vm.read_only:
                        raise ValueError(
                            f"service {service_id!r} has a non-read-only "
                            "VM; cannot run in parallel")
            self._parallel_chains[services[0]] = list(services)
            return
        # Off the packet path: validate with the analysis package (the
        # data plane itself stays analysis-free; see host.py's verifier
        # import for the same pattern).
        from repro.analysis.profiles import chain_conflicts
        missing = [service for service in services
                   if service not in profiles]
        if missing:
            raise ValueError(f"no action profile for {missing!r}")
        ordered = [profiles[service] for service in services]
        issues = chain_conflicts(ordered)
        if issues:
            raise ValueError(
                f"parallel chain {list(services)!r} has conflicting "
                f"profiles: {'; '.join(issues)}")
        plan = {
            service: (
                tuple(field for field in _MERGEABLE_FIELDS
                      if field in profile.writes),
                tuple(sorted(profile.annotations_written)),
            )
            for service, profile in zip(services, ordered)
        }
        self._parallel_chains[services[0]] = list(services)
        if any(fields or keys for fields, keys in plan.values()):
            self._chain_merge_plans[services[0]] = plan

    def set_load_balance_policy(self, policy: LoadBalancePolicy) -> None:
        self._lb_policy = policy
        for balancer in self._balancers.values():
            balancer.policy = policy

    def _validate_parallel_rule(self, entry: FlowTableEntry) -> None:
        for action in entry.actions:
            assert isinstance(action, ToService)
            for vm in self.vms_by_service.get(action.service_id, ()):
                if not vm.read_only:
                    raise ValueError(
                        f"parallel rule includes non-read-only service "
                        f"{action.service_id!r}")

    def _check_parallel_membership(self, vm: NfVm) -> None:
        if vm.read_only:
            return
        for entry in self.flow_table.entries():
            if entry.parallel and ToService(vm.service_id) in entry.actions:
                raise ValueError(
                    f"service {vm.service_id!r} appears in a parallel rule "
                    "but the registering VM is not read-only")

    # ------------------------------------------------------------------
    # Introspection (host-tier state for the hierarchy)
    # ------------------------------------------------------------------
    def service_queue_depths(self) -> dict[str, int]:
        """Occupied ring slots per service (host-specific internal state)."""
        return {service: sum(vm.rx_ring.occupancy for vm in vms)
                for service, vms in self.vms_by_service.items()}

    def start_overload_monitor(
            self, interval_ns: int, threshold_slots: int,
            callback: typing.Callable[[str, int], None],
            consecutive: int = 3) -> None:
        """Watch per-service queue depths and report sustained overload.

        §3.1: NF Managers "track load levels of NFs for load balancing
        and respond to failure or overload".  When a service's total ring
        occupancy stays above ``threshold_slots`` for ``consecutive``
        samples, ``callback(service_id, depth)`` fires once; it re-arms
        after the service drains below half the threshold.
        """
        if interval_ns <= 0 or threshold_slots <= 0 or consecutive <= 0:
            raise ValueError("monitor parameters must be positive")
        self.sim.process(self._overload_loop(
            interval_ns, threshold_slots, callback, consecutive))

    def _overload_loop(self, interval_ns, threshold_slots, callback,
                       consecutive):
        breaches: dict[str, int] = {}
        alarmed: set[str] = set()
        while True:
            yield self.sim.sleep(interval_ns)
            for service, depth in self.service_queue_depths().items():
                if depth > threshold_slots:
                    breaches[service] = breaches.get(service, 0) + 1
                    if (breaches[service] >= consecutive
                            and service not in alarmed):
                        alarmed.add(service)
                        callback(service, depth)
                else:
                    breaches[service] = 0
                    if depth < threshold_slots // 2:
                        alarmed.discard(service)

    def services(self) -> list[str]:
        return list(self.vms_by_service)

    # ------------------------------------------------------------------
    # Descriptor free list
    # ------------------------------------------------------------------
    def _desc_alloc(self, packet: Packet, scope: str,
                    ingress_at: int) -> PacketDescriptor:
        """A descriptor wrapper, recycled from the free list when possible."""
        pool = self._desc_pool
        if pool:
            return pool.pop().reset(packet, scope, ingress_at)
        return PacketDescriptor(packet=packet, scope=scope,
                                ingress_at=ingress_at)

    def _desc_free(self, descriptor: PacketDescriptor) -> None:
        """Retire a descriptor nobody references anymore."""
        if len(self._desc_pool) < _DESC_POOL_LIMIT:
            descriptor.packet = None  # type: ignore[assignment]
            descriptor.verdict = None
            descriptor.cached_entry = None
            self._desc_pool.append(descriptor)

    # ------------------------------------------------------------------
    # RX path
    # ------------------------------------------------------------------
    def _rx_loop(self, port: NicPort):
        """One RX thread: burst-poll the NIC ring, classify, dispatch.

        The thread blocks for the first frame, sweeps up to
        ``burst_size - 1`` more that already arrived, then moves the
        whole burst through classify → dispatch with one thread-occupancy
        charge, resolving the flow-table lookup plan once per (flow,
        burst).  At ``burst_size=1`` the event sequence is exactly the
        pre-burst one-descriptor-per-event pipeline.
        """
        costs = self.costs
        while True:
            packet: Packet = yield port.ingress.get()
            frames = [packet]
            if self.burst_size > 1:
                frames.extend(port.rx_burst(self.burst_size - 1))
            self.stats.record_rx_batch(len(frames))
            now = self.sim.now
            burst_plans: dict = {}
            work = costs.rx_batch_poll_ns
            classified: list[tuple[PacketDescriptor,
                                   FlowTableEntry | None]] = []
            for frame in frames:
                self.stats.record_rx(frame.size)
                descriptor = self._desc_alloc(frame, port.name, now)
                entry, lookup_cost = self._classify_in_burst(descriptor,
                                                            burst_plans)
                work += costs.rx_service_ns + lookup_cost
                classified.append((descriptor, entry))
            yield self.sim.sleep(work)
            extra = 0
            for descriptor, entry in classified:
                if entry is None:
                    self._fc_queue.try_put(descriptor)
                    continue
                extra += self._follow_entry(descriptor, entry,
                                            entry.default_action)
            if extra:
                yield self.sim.sleep(extra)

    def _classify_in_burst(self, descriptor: PacketDescriptor,
                           burst_plans: dict
                           ) -> tuple[FlowTableEntry | None, int]:
        """Classify against a per-burst plan: each distinct (scope, flow)
        in a burst pays for at most one table lookup; later packets of
        the same flow reuse the resolved entry for free."""
        key = (descriptor.scope, descriptor.packet.flow)
        if key in burst_plans:
            entry = burst_plans[key]
            if entry is not None:
                descriptor.cache_lookup(entry, self.flow_table.generation)
            return entry, 0
        entry, cost = self._classify(descriptor)
        burst_plans[key] = entry
        return entry, cost

    def _classify(self,
                  descriptor: PacketDescriptor
                  ) -> tuple[FlowTableEntry | None, int]:
        """Find the rule for the descriptor's (scope, flow).

        Returns (entry, service_cost_ns).  With the descriptor lookup cache
        enabled (§4.2), hits on the per-flow plan are free; otherwise each
        hop pays header extraction + a hash lookup.
        """
        flow = descriptor.packet.flow
        generation = self.flow_table.generation
        if self.lookup_cache:
            plan = self._plans.get(flow)
            if plan is not None and plan["generation"] == generation:
                cached = plan["entries"].get(descriptor.scope)
                if cached is not None:
                    descriptor.cache_lookup(cached, generation)
                    return cached, 0
            elif plan is not None:
                del self._plans[flow]
        cost = self.costs.header_extract_ns + self.costs.flow_lookup_ns
        entry = self.flow_table.lookup(descriptor.scope, flow,
                                       now_ns=self.sim.now)
        if entry is not None:
            if flow not in self._classified:
                self._classify_first_contact(flow, entry)
            descriptor.cache_lookup(entry, generation)
            if self.lookup_cache:
                if len(self._plans) >= _PLAN_CACHE_LIMIT:
                    self._plans.pop(next(iter(self._plans)))
                plan = self._plans.setdefault(
                    flow, {"generation": generation, "entries": {}})
                if plan["generation"] != generation:
                    plan["generation"] = generation
                    plan["entries"] = {}
                plan["entries"][descriptor.scope] = entry
        return entry, cost

    def _classify_first_contact(self, flow: FiveTuple,
                                entry: FlowTableEntry | None) -> None:
        """Classify a flow's first contact with this host exactly once:
        it either hit a pre-populated rule (proactive), hit a rule an
        earlier miss pulled in (reactive hit), or missed and took the
        controller slow path (reactive miss).  The reactive-miss-rate
        metric is ``reactive_misses / flow_setups`` over these three."""
        if len(self._classified) >= _PLAN_CACHE_LIMIT:
            self._classified.pop(next(iter(self._classified)))
        self._classified[flow] = None
        if entry is None:
            self.stats.reactive_misses += 1
        elif entry.proactive:
            self.stats.proactive_hits += 1
        else:
            self.stats.reactive_hits += 1

    # ------------------------------------------------------------------
    # RX path, columnar variant
    # ------------------------------------------------------------------
    def _rx_loop_columnar(self, port: NicPort):
        """Columnar RX thread: identical event structure to
        :meth:`_rx_loop` — block for the head frame, sweep the burst,
        one work sleep, one conditional dispatch sleep — but the burst
        travels as a single :class:`PacketBatch` and flow plans resolve
        once per distinct flow via :meth:`FlowTable.lookup_batch`.
        """
        costs = self.costs
        while True:
            packet: Packet = yield port.ingress.get()
            batch = PacketBatch(port.name, self.sim.now)
            batch.append(packet)
            if self.burst_size > 1:
                port.rx_burst_into(batch, self.burst_size - 1)
            count = batch.count
            self.stats.record_rx_batch(count)
            self.stats.record_rx_bulk(count, batch.total_bytes)
            burst_plans: dict = {}
            entries, lookup_cost = self._classify_flows(
                port.name, batch.distinct_flows(), burst_plans)
            yield self.sim.sleep(costs.rx_burst_work_ns(count) + lookup_cost)
            extra = self._dispatch_batch(batch, entries)
            if extra:
                yield self.sim.sleep(extra)

    def _classify_flows(self, scope: str,
                        flows: typing.Sequence[FiveTuple],
                        burst_plans: dict
                        ) -> tuple[dict, int]:
        """Resolve a batch's distinct flows against one scope in bulk.

        The columnar analogue of per-descriptor :meth:`_classify_in_burst`
        calls: burst-plan and per-flow plan-cache hits are free, the
        remaining flows go through :meth:`FlowTable.lookup_batch` in one
        round, and every cache side effect (stale-plan invalidation,
        first-contact classification, plan fill with FIFO eviction)
        happens per flow in arrival order — exactly the object
        pipeline's mutation sequence.  Returns ``(entries, cost_ns)``.
        """
        entries: dict = {}
        generation = self.flow_table.generation
        need: list[FiveTuple] = []
        hits = 0
        for flow in flows:
            key = (scope, flow)
            if key in burst_plans:
                entries[flow] = burst_plans[key]
                hits += 1
                continue
            if self.lookup_cache:
                plan = self._plans.get(flow)
                if plan is not None and plan["generation"] == generation:
                    cached = plan["entries"].get(scope)
                    if cached is not None:
                        burst_plans[key] = cached
                        entries[flow] = cached
                        hits += 1
                        continue
            need.append(flow)
        cost = 0
        if need:
            self.stats.lookup_batches += 1
            cost = ((self.costs.header_extract_ns
                     + self.costs.flow_lookup_ns) * len(need))
            results = self.flow_table.lookup_batch(scope, need,
                                                   now_ns=self.sim.now)
            for flow, entry in zip(need, results):
                if self.lookup_cache:
                    plan = self._plans.get(flow)
                    if plan is not None and plan["generation"] != generation:
                        del self._plans[flow]
                if entry is not None:
                    if flow not in self._classified:
                        self._classify_first_contact(flow, entry)
                    if self.lookup_cache:
                        if len(self._plans) >= _PLAN_CACHE_LIMIT:
                            self._plans.pop(next(iter(self._plans)))
                        plan = self._plans.setdefault(
                            flow, {"generation": generation, "entries": {}})
                        if plan["generation"] != generation:
                            plan["generation"] = generation
                            plan["entries"] = {}
                        plan["entries"][scope] = entry
                burst_plans[(scope, flow)] = entry
                entries[flow] = entry
        self.stats.lookup_batch_hits += hits
        return entries, cost

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _follow_entry(self, descriptor: PacketDescriptor,
                      entry: FlowTableEntry,
                      destination: Destination) -> int:
        """Dispatch a descriptor along ``destination`` under ``entry``.

        Returns the extra service cost (fan-out copies, queue scans) the
        calling thread must charge.
        """
        if entry.parallel and destination == entry.default_action:
            return self._fan_out(descriptor, entry)
        return self._route(descriptor, destination)

    def _route(self, descriptor: PacketDescriptor,
               destination: Destination) -> int:
        if isinstance(destination, Drop):
            self._drop(descriptor, "dropped_by_nf")
            return 0
        if isinstance(destination, ToPort):
            self._egress(descriptor, destination.port)
            return 0
        assert isinstance(destination, ToService)
        if self._parallel_chains and descriptor.group_id is None:
            chain = self._parallel_chains.get(destination.service_id)
            if chain is not None:
                return self._fan_out_members(
                    descriptor, chain,
                    plan=self._chain_merge_plans.get(
                        destination.service_id))
        replicas = self.vms_by_service.get(destination.service_id, ())
        if not replicas:
            self.stats.dropped_no_vm += 1
            if not self._group_member_lost(descriptor):
                self._release(descriptor.packet)
            self._desc_free(descriptor)
            return 0
        balancer = self._balancers[destination.service_id]
        vm, scan_cost = balancer.choose(replicas, descriptor.packet.flow)
        self.stats.record_service(destination.service_id)
        if not vm.rx_ring.try_enqueue(descriptor):
            self.stats.dropped_ring_full += 1
            if not self._group_member_lost(descriptor):
                self._release(descriptor.packet)
            self._desc_free(descriptor)
        return scan_cost

    def _fan_out(self, descriptor: PacketDescriptor,
                 entry: FlowTableEntry) -> int:
        """Copy a descriptor to every VM in a parallel action list."""
        members = [action.service_id for action in entry.actions
                   if isinstance(action, ToService)]
        return self._fan_out_members(descriptor, members)

    def _fan_out_members(self, descriptor: PacketDescriptor,
                         members: typing.Sequence[str],
                         plan: typing.Mapping[
                             str, tuple[tuple[str, ...], tuple[str, ...]]]
                         | None = None) -> int:
        group_id = next(_group_ids)
        group = _ParallelGroup(expected=len(members),
                               exit_scope=members[-1],
                               write_plan=plan, packet=descriptor.packet)
        self._groups[group_id] = group
        self.stats.parallel_groups += 1
        packet = descriptor.packet
        packet.add_reference(len(members) - 1)
        cost = self.costs.parallel_fanout_ns * (len(members) - 1)
        for index, service_id in enumerate(members):
            member = self._desc_alloc(packet, service_id,
                                      descriptor.ingress_at)
            member.group_id = group_id
            member.group_index = index
            member.cached_entry = descriptor.cached_entry
            member.cached_generation = descriptor.cached_generation
            replicas = self.vms_by_service.get(service_id, ())
            if not replicas:
                self.stats.dropped_no_vm += 1
                self._release(packet)
                self._desc_free(member)
                group.member_lost()
                continue
            balancer = self._balancers[service_id]
            vm, scan_cost = balancer.choose(replicas, packet.flow)
            cost += scan_cost
            self.stats.record_service(service_id)
            if not vm.rx_ring.try_enqueue(member):
                self.stats.dropped_ring_full += 1
                self._release(packet)
                self._desc_free(member)
                group.member_lost()
        if group.expected <= 0:
            del self._groups[group_id]
        # The template descriptor's reference now lives in the members.
        self._desc_free(descriptor)
        return cost

    # ------------------------------------------------------------------
    # Dispatch, columnar variant
    # ------------------------------------------------------------------
    def _dispatch_batch(self, batch: PacketBatch, entries: dict) -> int:
        """Dispatch an RX batch along its flows' default actions.

        When every flow resolves to the same single-replica non-parallel
        service, the batch stays columnar and moves in one ring enqueue;
        anything else (miss, parallel rule, multi-replica balancing,
        port/drop default, mixed destinations) rematerializes descriptors
        and walks the object path per packet.  Returns extra service cost
        to charge, exactly as the object dispatch loop would.
        """
        target: str | None = None
        bulk = True
        for entry in entries.values():
            if entry is None or entry.parallel:
                bulk = False
                break
            destination = entry.default_action
            if not isinstance(destination, ToService):
                bulk = False
                break
            if target is None:
                target = destination.service_id
            elif destination.service_id != target:
                bulk = False
                break
        if bulk and target is not None and self._bulk_service_ok(target):
            return self._dispatch_batch_to_service(batch, target)
        extra = 0
        for descriptor, entry in self._explode_batch(batch, entries):
            if entry is None:
                self._fc_queue.try_put(descriptor)
                continue
            extra += self._follow_entry(descriptor, entry,
                                        entry.default_action)
        return extra

    def _bulk_service_ok(self, service_id: str) -> bool:
        """A batch may move to this service without per-packet decisions:
        exactly one replica (the balancer is then a constant) and no
        parallel chain registered for it."""
        if self._parallel_chains and service_id in self._parallel_chains:
            return False
        return len(self.vms_by_service.get(service_id, ())) == 1

    def _dispatch_batch_to_service(self, batch: PacketBatch,
                                   service_id: str) -> int:
        """Move a whole batch to a single-replica service's RX ring.

        Accounting is identical to ``batch.count`` object dispatches:
        one balancer decision and one service count per packet, ring
        overflow drops the FIFO tail packet-by-packet.
        """
        vm = self.vms_by_service[service_id][0]
        n = batch.count
        # choose() with one replica is decisions += 1, scan cost 0.
        self._balancers[service_id].decisions += n
        self.stats.per_service_packets[service_id] += n
        accepted = vm.rx_ring.enqueue_batch(batch)
        if accepted < n:
            # enqueue_batch left the rejected tail in ``batch``.
            self.stats.dropped_ring_full += n - accepted
            for packet in batch.packets:
                self._release(packet)
        return 0

    def _explode_batch(self, batch: PacketBatch, entries: dict | None = None
                       ) -> list[tuple[PacketDescriptor,
                                       FlowTableEntry | None]]:
        """Rematerialize a batch into per-packet descriptors (slow path).

        The fallback boundary of the columnar kernel: every packet gets a
        descriptor carrying the batch's scalar verdict/priority plus its
        flow's cached lookup, and ``object_fallbacks`` counts the
        rematerializations.
        """
        self.stats.object_fallbacks += batch.count
        generation = self.flow_table.generation
        scope = batch.scope
        verdict = batch.verdict
        ingress_at = batch.ingress_at
        vm_priority = batch.vm_priority
        out: list[tuple[PacketDescriptor, FlowTableEntry | None]] = []
        for packet in batch.packets:
            descriptor = self._desc_alloc(packet, scope, ingress_at)
            descriptor.verdict = verdict
            descriptor.vm_priority = vm_priority
            entry = entries.get(packet.flow) if entries is not None else None
            if entry is not None:
                descriptor.cache_lookup(entry, generation)
            out.append((descriptor, entry))
        return out

    # ------------------------------------------------------------------
    # TX path
    # ------------------------------------------------------------------
    def tx_submit(self, descriptor: PacketDescriptor, vm: NfVm) -> None:
        """Called by a VM when its NF finished with a packet."""
        self.tx_submit_burst([descriptor], vm)

    def tx_submit_burst(self, descriptors: typing.Sequence[PacketDescriptor],
                        vm: NfVm) -> None:
        """Hand a VM's completed batch to its TX thread in one shot."""
        queue = self._vm_tx_assignment[vm.vm_id]
        if self.columnar:
            # Items may be PacketBatch or descriptors; the queue accounts
            # capacity in packets either way.
            for item in descriptors:
                if isinstance(item, PacketBatch):
                    n = item.count
                    accepted = queue.enqueue_batch(item)
                    if accepted < n:
                        self.stats.dropped_ring_full += n - accepted
                        for packet in item.packets:
                            self._release(packet)
                elif not queue.try_enqueue(item):
                    self.stats.dropped_ring_full += 1
                    if not self._group_member_lost(item):
                        self._release(item.packet)
                    self._desc_free(item)
            return
        accepted = queue.enqueue_burst(descriptors)
        for descriptor in descriptors[accepted:]:
            self.stats.dropped_ring_full += 1
            if not self._group_member_lost(descriptor):
                self._release(descriptor.packet)
            self._desc_free(descriptor)

    def _tx_loop(self, queue: RingBuffer):
        """One TX thread: burst-drain completed descriptors, resolve.

        Mirrors the RX side: block for the head descriptor, sweep the
        rest of the burst, then charge drain + per-packet resolution
        once, absorbing parallel-group members and re-resolving lookup
        plans once per (flow, burst).  ``burst_size=1`` reproduces the
        pre-burst event sequence exactly (including the unconditional
        merge delay after a group completes).
        """
        costs = self.costs
        while True:
            head: PacketDescriptor = yield queue.get()
            batch = [head]
            if self.burst_size > 1:
                batch.extend(queue.dequeue_burst(self.burst_size - 1))
            self.stats.record_tx_batch(len(batch))
            yield self.sim.sleep(costs.tx_batch_poll_ns
                                 + costs.tx_service_ns * len(batch))
            merged_any = False
            merge_cost = 0
            survivors: list[PacketDescriptor] = []
            for descriptor in batch:
                if descriptor.group_id is not None:
                    merged = self._absorb_group_member(descriptor)
                    if merged is None:
                        continue
                    descriptor, member_count = merged
                    merged_any = True
                    merge_cost += (costs.parallel_merge_ns
                                   * max(0, member_count - 1))
                survivors.append(descriptor)
            if merged_any:
                yield self.sim.sleep(merge_cost)
            burst_plans: dict = {}
            lookup_total = 0
            resolved: list[tuple[PacketDescriptor,
                                 FlowTableEntry | None]] = []
            for descriptor in survivors:
                assert descriptor.verdict is not None
                entry, lookup_cost = self._classify_in_burst(descriptor,
                                                             burst_plans)
                lookup_total += lookup_cost
                resolved.append((descriptor, entry))
            if lookup_total:
                yield self.sim.sleep(lookup_total)
            extra = 0
            for descriptor, entry in resolved:
                extra += self._resolve_verdict(descriptor, entry)
            if extra:
                yield self.sim.sleep(extra)

    def _tx_loop_columnar(self, queue: RingBuffer):
        """Columnar TX thread: same event structure as :meth:`_tx_loop`
        (head get, burst sweep, work sleep, conditional merge / lookup /
        dispatch sleeps) with the drain budget counted in packets and
        uniform batches resolved in bulk."""
        costs = self.costs
        while True:
            head = yield queue.get()
            items = [head]
            weight = batch_weight(head)
            if weight < self.burst_size:
                more = queue.dequeue_packets(self.burst_size - weight)
                items.extend(more)
                for item in more:
                    weight += batch_weight(item)
            self.stats.record_tx_batch(weight)
            columnar_items = sum(1 for item in items
                                 if isinstance(item, PacketBatch))
            if columnar_items > 1:
                # One drain charge covered several batches' packets.
                self.stats.batch_merges += columnar_items - 1
            yield self.sim.sleep(costs.tx_burst_work_ns(weight))
            merged_any = False
            merge_cost = 0
            survivors: list = []
            for item in items:
                # Batches never carry parallel-group members; only
                # descriptors can need absorbing.
                if (not isinstance(item, PacketBatch)
                        and item.group_id is not None):
                    merged = self._absorb_group_member(item)
                    if merged is None:
                        continue
                    item, member_count = merged
                    merged_any = True
                    merge_cost += (costs.parallel_merge_ns
                                   * max(0, member_count - 1))
                survivors.append(item)
            if merged_any:
                yield self.sim.sleep(merge_cost)
            burst_plans: dict = {}
            lookup_total = 0
            resolved: list = []
            for item in survivors:
                if isinstance(item, PacketBatch):
                    entries, lookup_cost = self._classify_flows(
                        item.scope, item.distinct_flows(), burst_plans)
                    lookup_total += lookup_cost
                    resolved.append((item, entries))
                else:
                    assert item.verdict is not None
                    entry, lookup_cost = self._classify_in_burst(item,
                                                                 burst_plans)
                    lookup_total += lookup_cost
                    resolved.append((item, entry))
            if lookup_total:
                yield self.sim.sleep(lookup_total)
            extra = 0
            for item, entry in resolved:
                if isinstance(item, PacketBatch):
                    extra += self._resolve_batch(item, entry)
                else:
                    extra += self._resolve_verdict(item, entry)
            if extra:
                yield self.sim.sleep(extra)

    def _resolve_batch(self, batch: PacketBatch, entries: dict) -> int:
        """Resolve a whole batch's scalar verdict against its flows' rules.

        Bulk paths: a discard verdict, or every flow agreeing on one
        destination that is a known port, a bulk-eligible service, or a
        drop.  A Send-to that any flow's rule disallows falls back to the
        object path so per-packet policy accounting runs unchanged.
        """
        verdict = batch.verdict
        assert verdict is not None
        if verdict.kind is NfVerdict.DISCARD:
            self.stats.dropped_by_nf += batch.count
            for packet in batch.packets:
                self._release(packet)
            return 0
        destination: Destination | None = None
        bulk = True
        for entry in entries.values():
            if entry is None:
                bulk = False
                break
            if verdict.kind is NfVerdict.SEND:
                flow_dest = verdict.destination
                assert flow_dest is not None
                if not entry.allows(flow_dest):
                    bulk = False
                    break
            else:
                flow_dest = entry.default_action
            if entry.parallel and flow_dest == entry.default_action:
                bulk = False
                break
            if destination is None:
                destination = flow_dest
            elif flow_dest != destination:
                bulk = False
                break
        if bulk and destination is not None:
            if isinstance(destination, ToPort):
                port = self.ports.get(destination.port)
                if port is not None:
                    self._egress_batch(batch, destination.port, port)
                    return 0
            elif isinstance(destination, Drop):
                self.stats.dropped_by_nf += batch.count
                for packet in batch.packets:
                    self._release(packet)
                return 0
            elif (isinstance(destination, ToService)
                  and self._bulk_service_ok(destination.service_id)):
                return self._dispatch_batch_to_service(
                    batch, destination.service_id)
        extra = 0
        for descriptor, entry in self._explode_batch(batch, entries):
            extra += self._resolve_verdict(descriptor, entry)
        return extra

    def _egress_batch(self, batch: PacketBatch, port_name: str,
                      port: NicPort) -> None:
        """Transmit a whole batch out one port: one stats update, then
        the per-packet release/transmit interleaving the wire's timer
        cascade depends on."""
        self.stats.record_tx_bulk(port_name, batch.count, batch.total_bytes)
        for packet in batch.packets:
            packet.release()
            port.transmit(packet)

    def _capture_group_writes(self, descriptor: PacketDescriptor) -> None:
        """Journal a parallel member's packet writes (merge stage).

        Called by the VM loop in the same event as the member's handler,
        immediately after it returns.  No-op for legacy groups (no write
        plan) and for members whose profile declares no writes.
        """
        group = self._groups.get(descriptor.group_id)
        if group is not None and group.write_plan is not None:
            group.capture(descriptor.scope, descriptor.group_index,
                          descriptor.packet)

    def _absorb_group_member(
            self, descriptor: PacketDescriptor
    ) -> tuple[PacketDescriptor, int] | None:
        """Fold one parallel member in; emit the merged descriptor when all
        members have reported."""
        group = self._groups.get(descriptor.group_id)
        if group is None:  # group finalized by member loss accounting
            self._release(descriptor.packet)
            self._desc_free(descriptor)
            return None
        if not group.member_done(descriptor):
            self._release(descriptor.packet)
            self._desc_free(descriptor)
            return None
        del self._groups[descriptor.group_id]
        group.apply(descriptor.packet)
        verdict = resolve_parallel_verdicts(group.verdicts,
                                            policy=self.conflict_policy)
        merged = self._desc_alloc(descriptor.packet, group.exit_scope,
                                  descriptor.ingress_at)
        merged.verdict = verdict
        count = len(group.verdicts)
        self._desc_free(descriptor)
        return merged, count

    def _group_member_lost(self, descriptor: PacketDescriptor) -> bool:
        """Account for a parallel-group member dying after dispatch.

        Every post-dispatch loss path (TX ring overflow, a drop verdict,
        a VM crash with the member in flight) must run group bookkeeping,
        or the group can never complete: its ``_groups`` entry leaks and
        — worse — the surviving members' verdicts are thrown away even
        though their NFs processed the packet successfully.

        When the lost member was the *last* straggler (every survivor
        already reported), the group is finalized here, and the merged
        descriptor reuses the lost member's packet reference — by this
        point the survivors have all dropped theirs, so releasing it
        instead would hand the merge a reclaimed buffer.  Returns True
        exactly when that reference was consumed; the caller must then
        skip its own release.
        """
        group_id = descriptor.group_id
        if group_id is None:
            return False
        group = self._groups.get(group_id)
        if group is None:
            return False
        if group.member_lost():
            del self._groups[group_id]
            group.apply(descriptor.packet)
            verdict = resolve_parallel_verdicts(
                group.verdicts, policy=self.conflict_policy)
            merged = self._desc_alloc(descriptor.packet, group.exit_scope,
                                      descriptor.ingress_at)
            merged.verdict = verdict
            entry, _cost = self._classify(merged)
            self._resolve_verdict(merged, entry)
            return True
        if group.expected <= 0:
            # Every member died before any verdict: nothing to merge.
            del self._groups[group_id]
        return False

    def _resolve_verdict(self, descriptor: PacketDescriptor,
                         entry: FlowTableEntry | None) -> int:
        verdict = descriptor.verdict
        assert verdict is not None
        if verdict.kind is NfVerdict.DISCARD:
            self._drop(descriptor, "dropped_by_nf")
            return 0
        if entry is None:
            # Mid-chain miss: ask the control plane like any other miss.
            self._fc_queue.try_put(descriptor)
            return 0
        if verdict.kind is NfVerdict.SEND:
            destination = verdict.destination
            assert destination is not None
            if not entry.allows(destination):
                # §3.4: Send-to "is only permitted if the destination is one
                # of the allowable next hops listed in the flow table".
                self.stats.policy_violations += 1
                destination = entry.default_action
            return self._follow_entry(descriptor, entry, destination)
        return self._follow_entry(descriptor, entry, entry.default_action)

    # ------------------------------------------------------------------
    # Flow Controller thread (SDN miss path, §4.1)
    # ------------------------------------------------------------------
    def _fc_loop(self):
        while True:
            descriptor: PacketDescriptor = yield self._fc_queue.get()
            key = (descriptor.scope, descriptor.packet.flow)
            if key in self._pending_flows:
                self._pending_flows[key].append(descriptor)
                continue
            self._pending_flows[key] = [descriptor]
            if descriptor.packet.flow not in self._classified:
                self._classify_first_contact(descriptor.packet.flow, None)
            self.stats.sdn_requests += 1
            if self.event_log is not None:
                self.event_log.record("sdn_request", host=self.name,
                                      scope=descriptor.scope,
                                      flow=str(descriptor.packet.flow))
            # Resolve each flow in its own process so one slow controller
            # round trip doesn't head-of-line-block other misses.
            self.sim.process(self._resolve_miss(key))

    def _resolve_miss(self, key: tuple[str, FiveTuple]):
        scope, flow = key
        if self.controller is None:
            for descriptor in self._pending_flows.pop(key):
                self._drop(descriptor, "dropped_no_rule")
            return
        rules = yield from self._request_rules(scope, flow)
        if rules is None:
            # Control plane unreachable (or its app failed the request):
            # degrade instead of blocking — the data plane stays alive.
            self._degrade_pending(key)
            return
        for rule in rules:
            self.install_rule(rule)
        buffered = self._pending_flows.pop(key)
        for descriptor in buffered:
            entry, _cost = self._classify(descriptor)
            if entry is None:
                self._drop(descriptor, "dropped_no_rule")
            else:
                self._follow_entry(descriptor, entry, entry.default_action)

    def _request_rules(self, scope: str, flow: FiveTuple):
        """Ask the controller for rules; None means giving up.

        Without a :class:`ControlPlanePolicy` this is a single request
        that waits as long as the controller takes.  With one, each
        attempt is bounded by ``timeout_ns`` and retried with capped
        exponential backoff up to ``max_attempts`` tries.
        """
        policy = self.control_policy
        if policy is None:
            try:
                rules = yield self.controller.flow_request(self.name, scope,
                                                           flow)
            except Exception:  # noqa: BLE001 - controller fault isolation
                return None
            return list(rules or ())
        for attempt in range(policy.max_attempts):
            reply = self.controller.flow_request(self.name, scope, flow)
            deadline = self.sim.timeout(policy.timeout_ns)
            failed = False
            try:
                yield self.sim.any_of([reply, deadline])
            except Exception:  # noqa: BLE001 - controller fault isolation
                failed = True
            if not failed and reply.processed and reply.ok:
                return list(reply.value or ())
            if not (failed or reply.processed):
                # Deadline fired first: the request timed out.  A late
                # reply is ignored (the AnyOf defuses late failures).
                self.stats.sdn_timeouts += 1
                if self.event_log is not None:
                    self.event_log.record("sdn_timeout", host=self.name,
                                          scope=scope, attempt=attempt)
            if attempt + 1 < policy.max_attempts:
                self.stats.sdn_retries += 1
                yield self.sim.sleep(policy.backoff_ns(attempt))
        if self.event_log is not None:
            self.event_log.record("controller_unreachable", host=self.name,
                                  scope=scope,
                                  attempts=policy.max_attempts)
        return None

    def _degrade_pending(self, key: tuple[str, FiveTuple]) -> None:
        """Release a miss queue without rules: fallback-forward or drop."""
        buffered = self._pending_flows.pop(key)
        self.stats.miss_fallbacks += 1
        if self.miss_fallback is not None:
            for descriptor in buffered:
                self.stats.degraded_packets += 1
                self._route(descriptor, self.miss_fallback)
        else:
            for descriptor in buffered:
                self._drop(descriptor, "dropped_no_rule")
        if self.event_log is not None:
            self.event_log.record(
                "miss_degraded", host=self.name, scope=key[0],
                packets=len(buffered),
                fallback=str(self.miss_fallback) if self.miss_fallback
                else "drop")

    # ------------------------------------------------------------------
    # Cross-layer messages (§3.4)
    # ------------------------------------------------------------------
    def submit_nf_message(self, message: NfMessage) -> None:
        """Entry point for NFs (via NfContext): queue a message."""
        self._mgmt_queue.try_put(message)

    def _mgmt_loop(self):
        while True:
            message: NfMessage = yield self._mgmt_queue.get()
            if self.policy_validator is not None:
                approved = yield self.policy_validator.validate(self.name,
                                                                message)
                if not approved:
                    self.rejected_messages += 1
                    if self.event_log is not None:
                        self.event_log.record(
                            "message_rejected", host=self.name,
                            kind=type(message).__name__,
                            sender=message.sender_service)
                    continue
            if self.event_log is not None:
                self.event_log.record("message_applied", host=self.name,
                                      kind=type(message).__name__,
                                      sender=message.sender_service)
            self.apply_message(message)

    def apply_message(self, message: NfMessage) -> None:
        """Apply an (already validated) cross-layer message to the table."""
        if isinstance(message, ChangeDefault):
            self._apply_change_default(message)
        elif isinstance(message, SkipMe):
            self._apply_skip_me(message)
        elif isinstance(message, RequestMe):
            self._apply_request_me(message)
        elif isinstance(message, UserMessage):
            handler = self.message_handlers.get(message.sender_service)
            if handler is not None:
                handler(message)
            elif self.user_message_sink is not None:
                self.user_message_sink(self.name, message)
            else:
                self.uninterpreted_messages.append(message)
        else:
            raise TypeError(f"unknown message type {type(message).__name__}")

    def _apply_change_default(self, message: ChangeDefault) -> None:
        destination = _parse_target(message.target)
        self._rewrite_defaults(
            scope=message.service, flows=message.flows,
            new_default=destination)

    def _apply_skip_me(self, message: SkipMe) -> None:
        bypass = ToService(message.service)
        bypass_default = self._scope_default(message.service, message.flows)
        if bypass_default is None:
            return  # S has no rules; nothing routes through it anyway
        exact = message.flows.exact_key()
        for scope in list(self.flow_table.scopes()):
            if scope == message.service:
                continue
            if exact is not None:
                entry = self.flow_table.lookup(scope, exact)
                if entry is not None and entry.default_action == bypass:
                    specialized = self.flow_table.specialize(scope, exact)
                    self.install_rule(
                        specialized.with_default(bypass_default))
                continue
            for entry in list(self.flow_table.entries(scope)):
                if (entry.default_action == bypass
                        and message.flows.subsumes(entry.match)):
                    self.install_rule(entry.with_default(bypass_default))

    def _apply_request_me(self, message: RequestMe) -> None:
        """Rewrite every rule (including per-flow specializations) that has
        an edge to the requesting service so it becomes the default."""
        wanted = ToService(message.service)
        exact = message.flows.exact_key()
        for scope in list(self.flow_table.scopes()):
            if scope == message.service:
                continue
            if exact is not None:
                entry = self.flow_table.lookup(scope, exact)
                if (entry is not None and wanted in entry.actions
                        and entry.default_action != wanted):
                    specialized = self.flow_table.specialize(scope, exact)
                    self.install_rule(specialized.with_default(wanted))
                continue
            for entry in list(self.flow_table.entries(scope)):
                if (wanted in entry.actions
                        and entry.default_action != wanted
                        and message.flows.subsumes(entry.match)):
                    self.install_rule(entry.with_default(wanted))

    def _scope_default(self, scope: str,
                       flows: FlowMatch) -> Destination | None:
        """The default action service ``scope`` applies to ``flows``."""
        exact = flows.exact_key()
        if exact is not None:
            entry = self.flow_table.lookup(scope, exact)
            return entry.default_action if entry else None
        entries = self.flow_table.entries(scope)
        if not entries:
            return None
        # Prefer the rule whose match equals F, else the scope's broadest.
        for entry in entries:
            if entry.match == flows:
                return entry.default_action
        broadest = min(entries, key=lambda rule: rule.match.specificity)
        return broadest.default_action

    def _rewrite_defaults(self, scope: str, flows: FlowMatch,
                          new_default: Destination) -> None:
        """Make ``new_default`` the default for ``flows`` within ``scope``.

        Exact flows get a specialised per-flow rule (cloning the wildcard
        template so the change doesn't leak to other flows); wildcard flows
        rewrite matching rules in place, or install an overriding rule at
        higher priority when no rule has that exact match.
        """
        exact = flows.exact_key()
        if exact is not None:
            entry = self.flow_table.specialize(scope, exact)
            if entry is None:
                return
            self.install_rule(entry.with_default(new_default))
            return
        entries = self.flow_table.entries(scope)
        # Rules entirely inside F (including per-flow specializations) are
        # rewritten in place.
        rewritten = False
        for entry in entries:
            if flows.subsumes(entry.match):
                self.install_rule(entry.with_default(new_default))
                rewritten = True
        # Broader rules that merely overlap F get a higher-priority
        # override carved out for the F region.
        broader = [entry for entry in entries
                   if not flows.subsumes(entry.match)
                   and _match_covers(entry.match, flows)]
        if broader:
            template = max(broader, key=lambda rule:
                           (rule.priority, rule.match.specificity))
            override = FlowTableEntry(
                scope=scope, match=flows,
                actions=template.with_default(new_default).actions,
                parallel=template.parallel,
                priority=template.priority + 1)
            self.install_rule(override)
        elif not rewritten:
            return

    # ------------------------------------------------------------------
    # Terminal actions
    # ------------------------------------------------------------------
    def _egress(self, descriptor: PacketDescriptor, port_name: str) -> None:
        port = self.ports.get(port_name)
        if port is None:
            self._drop(descriptor, "dropped_no_rule")
            return
        packet = descriptor.packet
        self.stats.record_tx(port_name, packet.size)
        # Pure refcount drop — no pool reclaim here: the zero-ref buffer
        # is still on the wire (NIC TX FIFO, then fabric / egress sinks).
        # The terminal owner (pktgen's return sink, a drop path, or the
        # next host) reclaims it.
        packet.release()
        self._desc_free(descriptor)
        port.transmit(packet)

    def _drop(self, descriptor: PacketDescriptor, counter: str) -> None:
        setattr(self.stats, counter, getattr(self.stats, counter) + 1)
        if not self._group_member_lost(descriptor):
            self._release(descriptor.packet)
        self._desc_free(descriptor)

    @staticmethod
    def _release(packet: Packet) -> None:
        # free(), not release(): drop paths are terminal owners, so a
        # pooled buffer goes straight back to its slab at refcount zero.
        packet.free()


def _parse_target(target: str) -> Destination:
    """ChangeDefault targets: "port:<name>", "drop", or a Service ID."""
    if target == "drop":
        return Drop()
    if target.startswith("port:"):
        return ToPort(target[len("port:"):])
    return ToService(target)


def _match_covers(rule_match: FlowMatch, flows: FlowMatch) -> bool:
    """Whether a rule's match could apply to flows selected by ``flows``.

    Conservative overlap test: exact F is checked precisely; wildcard F is
    treated as overlapping unless both constrain the same field to
    different values.
    """
    exact = flows.exact_key()
    if exact is not None:
        return rule_match.matches(exact)
    for field in ("src_ip", "dst_ip", "protocol", "src_port", "dst_port"):
        ours, theirs = getattr(rule_match, field), getattr(flows, field)
        if ours is not None and theirs is not None and ours != theirs:
            return False
    return True
