"""NfvHost: one SDNFV host = an NF Manager plus its NIC ports and VMs.

A convenience facade that wires the pieces of :mod:`repro.dataplane`
together the way the paper's testbed does (§5 setup): NIC ports, the NF
Manager threads, and registered NF VMs, with an optional SDN control
channel attached.
"""

from __future__ import annotations

import typing

from repro.dataplane.actions import Destination
from repro.dataplane.costs import HostCosts
from repro.dataplane.flow_table import FlowTableEntry
from repro.dataplane.load_balancer import LoadBalancePolicy
from repro.dataplane.manager import (
    DEFAULT_BURST_SIZE,
    ControlPlanePolicy,
    NfManager,
    NicPort,
)
from repro.net.mempool import DEFAULT_POOL_SIZE, PacketPool
from repro.dataplane.vm import NfVm
from repro.nfs.base import NetworkFunction
from repro.sim.randomness import RandomStreams
from repro.sim.simulator import Simulator


class NfvHost:
    """A simulated SDNFV host."""

    def __init__(self, sim: Simulator, name: str = "host0",
                 costs: HostCosts | None = None,
                 controller: typing.Any | None = None,
                 ports: typing.Sequence[str] | None = None,
                 ingress_port: str = "eth0",
                 exit_port: str = "eth1",
                 extra_ports: typing.Sequence[str] = (),
                 line_rate_gbps: float = 10.0,
                 tx_threads: int = 2,
                 load_balance: LoadBalancePolicy = (
                     LoadBalancePolicy.LEAST_QUEUE),
                 lookup_cache: bool = True,
                 conflict_policy: str = "action_priority",
                 control_policy: ControlPlanePolicy | None = None,
                 miss_fallback: Destination | None = None,
                 burst_size: int = DEFAULT_BURST_SIZE,
                 pool_size: int = DEFAULT_POOL_SIZE,
                 columnar: bool = False,
                 seed: int = 0,
                 verify: bool = False) -> None:
        self.sim = sim
        self.name = name
        # Normalized port construction (shared with build_network and
        # SdnfvApp.deploy): either pass an explicit ``ports`` tuple, or
        # let ``ingress_port`` / ``exit_port`` / ``extra_ports`` assemble
        # one.  The first two are remembered so deploy-time code can ask
        # a host where traffic enters and leaves.
        if ports is None:
            ports = (ingress_port, exit_port, *extra_ports)
        self.ingress_port = ingress_port if ingress_port in ports else ports[0]
        self.exit_port = (exit_port if exit_port in ports
                          else ports[min(1, len(ports) - 1)])
        self.manager = NfManager(
            sim, name=name, costs=costs, controller=controller,
            tx_threads=tx_threads, load_balance=load_balance,
            lookup_cache=lookup_cache, conflict_policy=conflict_policy,
            control_policy=control_policy, miss_fallback=miss_fallback,
            burst_size=burst_size, pool_size=pool_size, columnar=columnar,
            streams=RandomStreams(seed=seed))
        for port_name in ports:
            self.manager.add_port(port_name, line_rate_gbps=line_rate_gbps)
        # Opt-in ownership verification (repro.analysis.ownership): when
        # off — the default — no wrapper exists and the data plane runs
        # the exact unmodified class methods (zero overhead, see the
        # verify-parity tests).  Imported lazily so the fast path never
        # even loads the analysis package.
        self.verifier = None
        if verify:
            from repro.analysis.ownership import HostVerifier
            self.verifier = HostVerifier(self)

    # ------------------------------------------------------------------
    # Pass-throughs
    # ------------------------------------------------------------------
    @property
    def stats(self):
        return self.manager.stats

    @property
    def flow_table(self):
        return self.manager.flow_table

    @property
    def costs(self) -> HostCosts:
        return self.manager.costs

    @property
    def packet_pool(self) -> PacketPool | None:
        """The host's packet mempool (None when ``pool_size=0``)."""
        return self.manager.packet_pool

    def port(self, name: str) -> NicPort:
        return self.manager.ports[name]

    def add_nf(self, nf: NetworkFunction, ring_slots: int = 512,
               priority: int = 0) -> NfVm:
        """Register an NF VM with the manager (§3.3 handshake)."""
        return self.manager.register_vm(nf, ring_slots=ring_slots,
                                        priority=priority)

    def install_rule(self, entry: FlowTableEntry) -> None:
        self.manager.install_rule(entry)

    def install_rules(self,
                      entries: typing.Iterable[FlowTableEntry]) -> None:
        for entry in entries:
            self.manager.install_rule(entry)

    def inject(self, port_name: str, packet) -> bool:
        """Deliver a packet to a port's ingress (what the wire does).

        Returns False when the NIC RX ring is full and the frame dropped.
        """
        return self.manager.ports[port_name].receive(packet)

    def __repr__(self) -> str:
        services = ", ".join(self.manager.services())
        return f"<NfvHost {self.name} services=[{services}]>"
