"""SPSC ring buffers connecting the NF Manager and VM threads.

Paper §4.1: "we implement all communication in our system using asynchronous
ring buffers ... Since each ring buffer has a single data producer thread
and a single consumer thread, no locks are required."  In the simulation a
ring is a bounded FIFO; what we keep from the real design is the *bounded*
capacity (packets are dropped when a VM falls behind — the load-balancing
experiments depend on this) and the single-consumer discipline.
"""

from __future__ import annotations

import typing

from repro.sim.events import Event
from repro.sim.store import Store

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulator import Simulator

DEFAULT_RING_SLOTS = 512


class RingBuffer:
    """A bounded descriptor queue with drop-on-full producer semantics."""

    def __init__(self, sim: Simulator, name: str,
                 slots: int = DEFAULT_RING_SLOTS) -> None:
        if slots <= 0:
            raise ValueError("ring must have at least one slot")
        self.name = name
        self.slots = slots
        # Ring poll events are only ever yielded by the consumer loop, so
        # they recycle through the simulator's kernel free list.
        self._store = Store(sim, capacity=slots, recycle=True)
        self.enqueued = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._store)

    @property
    def occupancy(self) -> int:
        """Occupied slots — what queue-length load balancing inspects."""
        return len(self._store)

    @property
    def is_full(self) -> bool:
        return self._store.is_full

    def try_enqueue(self, item: typing.Any) -> bool:
        """Producer side: non-blocking put; False means the packet dropped."""
        if self._store.try_put(item):
            self.enqueued += 1
            return True
        self.dropped += 1
        return False

    def enqueue_burst(self, items: typing.Sequence[typing.Any]) -> int:
        """Producer side: enqueue a burst, dropping the tail when full.

        DPDK ``rte_ring_enqueue_burst`` semantics: items are accepted in
        order until the ring fills; the number accepted is returned and
        every rejected item counts as one drop (per-slot accounting is
        identical to ``len(items)`` calls to :meth:`try_enqueue`).
        """
        accepted = 0
        for item in items:
            if not self._store.try_put(item):
                break
            self.enqueued += 1
            accepted += 1
        self.dropped += len(items) - accepted
        return accepted

    def dequeue_burst(self, max_n: int) -> list[typing.Any]:
        """Consumer side: remove and return up to ``max_n`` queued items.

        Non-blocking; returns fewer than ``max_n`` (possibly zero) items
        when the ring runs empty.  The batch-poll analogue of
        ``rte_ring_dequeue_burst``.
        """
        items: list[typing.Any] = []
        while len(items) < max_n:
            item = self._store.try_get()
            if item is None:
                break
            items.append(item)
        return items

    def get(self) -> Event:
        """Consumer side: event yielding the next descriptor."""
        return self._store.get()

    def try_get(self) -> typing.Any | None:
        return self._store.try_get()

    def drain(self) -> list[typing.Any]:
        """Remove and return every queued item (failover salvage path)."""
        items: list[typing.Any] = []
        while True:
            item = self._store.try_get()
            if item is None:
                return items
            items.append(item)
