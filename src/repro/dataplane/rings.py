"""SPSC ring buffers connecting the NF Manager and VM threads.

Paper §4.1: "we implement all communication in our system using asynchronous
ring buffers ... Since each ring buffer has a single data producer thread
and a single consumer thread, no locks are required."  In the simulation a
ring is a bounded FIFO; what we keep from the real design is the *bounded*
capacity (packets are dropped when a VM falls behind — the load-balancing
experiments depend on this) and the single-consumer discipline.
"""

from __future__ import annotations

import typing

from repro.sim.events import Event
from repro.sim.store import Store

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulator import Simulator

DEFAULT_RING_SLOTS = 512


class RingBuffer:
    """A bounded descriptor queue with drop-on-full producer semantics."""

    def __init__(self, sim: "Simulator", name: str,
                 slots: int = DEFAULT_RING_SLOTS) -> None:
        if slots <= 0:
            raise ValueError("ring must have at least one slot")
        self.name = name
        self.slots = slots
        self._store = Store(sim, capacity=slots)
        self.enqueued = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._store)

    @property
    def occupancy(self) -> int:
        """Occupied slots — what queue-length load balancing inspects."""
        return len(self._store)

    @property
    def is_full(self) -> bool:
        return self._store.is_full

    def try_enqueue(self, item: typing.Any) -> bool:
        """Producer side: non-blocking put; False means the packet dropped."""
        if self._store.try_put(item):
            self.enqueued += 1
            return True
        self.dropped += 1
        return False

    def get(self) -> Event:
        """Consumer side: event yielding the next descriptor."""
        return self._store.get()

    def try_get(self) -> typing.Any | None:
        return self._store.try_get()

    def drain(self) -> list[typing.Any]:
        """Remove and return every queued item (failover salvage path)."""
        items: list[typing.Any] = []
        while True:
            item = self._store.try_get()
            if item is None:
                return items
            items.append(item)
