"""SPSC ring buffers connecting the NF Manager and VM threads.

Paper §4.1: "we implement all communication in our system using asynchronous
ring buffers ... Since each ring buffer has a single data producer thread
and a single consumer thread, no locks are required."  In the simulation a
ring is a bounded FIFO; what we keep from the real design is the *bounded*
capacity (packets are dropped when a VM falls behind — the load-balancing
experiments depend on this) and the single-consumer discipline.
"""

from __future__ import annotations

import typing

from repro.net.batch import PacketBatch
from repro.sim.events import Event
from repro.sim.store import Store

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.dataplane.stats import HostStats
    from repro.sim.simulator import Simulator

DEFAULT_RING_SLOTS = 512


def batch_weight(item: typing.Any) -> int:
    """Slots an item occupies: a batch weighs its packet count."""
    return item.count if isinstance(item, PacketBatch) else 1


class RingBuffer:
    """A bounded descriptor queue with drop-on-full producer semantics.

    In ``columnar`` mode the ring moves :class:`PacketBatch` items
    alongside plain descriptors and accounts capacity in *packets*, not
    items: a 32-packet batch occupies 32 slots, so drop behaviour is
    identical to the object pipeline enqueueing 32 descriptors.  Batches
    split FIFO-prefix-wise at the capacity boundary and at consumer
    dequeue budgets; splits are reported to ``stats.batch_splits``.
    """

    def __init__(self, sim: Simulator, name: str,
                 slots: int = DEFAULT_RING_SLOTS,
                 columnar: bool = False,
                 stats: HostStats | None = None) -> None:
        if slots <= 0:
            raise ValueError("ring must have at least one slot")
        self.name = name
        self.slots = slots
        self.columnar = columnar
        self.stats = stats
        # Ring poll events are only ever yielded by the consumer loop, so
        # they recycle through the simulator's kernel free list.
        self._store = Store(sim, capacity=slots, recycle=True)
        # Deque-resident packet count (items handed straight to a parked
        # consumer never transit the deque, mirroring Store occupancy).
        self._packets = 0
        self.enqueued = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._store)

    @property
    def occupancy(self) -> int:
        """Occupied slots — what queue-length load balancing inspects."""
        if self.columnar:
            return self._packets
        return len(self._store)

    @property
    def is_full(self) -> bool:
        if self.columnar:
            return self._packets >= self.slots
        return self._store.is_full

    def _put_one(self, item: typing.Any) -> bool:
        """Single-slot put with packet-weighted capacity in columnar
        mode (same handoff-then-append discipline as ``Store.try_put``)."""
        if not self.columnar:
            return self._store.try_put(item)
        store = self._store
        items = store.items
        if store._getters and not items:
            getter = store._pop_live_getter()
            if getter is not None:
                getter.succeed(item)
                return True
        if self._packets >= self.slots:
            return False
        items.append(item)
        self._packets += 1
        return True

    def try_enqueue(self, item: typing.Any) -> bool:
        """Producer side: non-blocking put; False means the packet dropped."""
        if self._put_one(item):
            self.enqueued += 1
            return True
        self.dropped += 1
        return False

    def enqueue_batch(self, batch: PacketBatch) -> int:
        """Producer side: enqueue a whole batch without per-item boxing.

        Accepts the longest FIFO prefix that fits the packet-weighted
        capacity (splitting the batch at the boundary) and returns the
        number of packets accepted — the same count ``len(batch)``
        descriptor enqueues would have accepted.  On partial accept the
        caller keeps the rejected tail *in* ``batch``; a fully accepted
        batch is owned by the ring afterwards.
        """
        n = batch.count
        if n == 0:
            return 0
        store = self._store
        items = store.items
        if store._getters and not items:
            getter = store._pop_live_getter()
            if getter is not None:
                # A parked consumer takes the head straight off the wire
                # (object parity: one descriptor hands off, the rest
                # append subject to capacity — min(n, slots + 1) total).
                accepted = min(n, self.slots + 1)
                handed = batch if accepted == n else self._split(
                    batch, accepted)
                getter.succeed(handed)
                self.enqueued += accepted
                self.dropped += n - accepted
                return accepted
        accepted = min(n, self.slots - self._packets)
        if accepted > 0:
            handed = batch if accepted == n else self._split(batch, accepted)
            items.append(handed)
            self._packets += accepted
            self.enqueued += accepted
        else:
            accepted = 0
        self.dropped += n - accepted
        return accepted

    def _split(self, batch: PacketBatch, k: int) -> PacketBatch:
        if self.stats is not None:
            self.stats.batch_splits += 1
        return batch.split(k)

    def dequeue_packets(self, budget: int) -> list[typing.Any]:
        """Consumer side: remove whole items worth up to ``budget``
        packets, splitting the deque head when it straddles the budget.

        The columnar analogue of ``dequeue_burst`` — the consumer drains
        exactly the packets the object pipeline would have dequeued as
        individual descriptors.
        """
        items: list[typing.Any] = []
        store_items = self._store.items
        while budget > 0 and store_items:
            head = store_items[0]
            weight = batch_weight(head)
            if weight <= budget:
                items.append(self.try_get())
                budget -= weight
            else:
                items.append(self._split(head, budget))
                self._packets -= budget
                break
        return items

    def enqueue_burst(self, items: typing.Sequence[typing.Any]) -> int:
        """Producer side: enqueue a burst, dropping the tail when full.

        DPDK ``rte_ring_enqueue_burst`` semantics: items are accepted in
        order until the ring fills; the number accepted is returned and
        every rejected item counts as one drop (per-slot accounting is
        identical to ``len(items)`` calls to :meth:`try_enqueue`).
        """
        accepted = 0
        for item in items:
            if not self._put_one(item):
                break
            self.enqueued += 1
            accepted += 1
        self.dropped += len(items) - accepted
        return accepted

    def dequeue_burst(self, max_n: int) -> list[typing.Any]:
        """Consumer side: remove and return up to ``max_n`` queued items.

        Non-blocking; returns fewer than ``max_n`` (possibly zero) items
        when the ring runs empty.  The batch-poll analogue of
        ``rte_ring_dequeue_burst``.
        """
        items: list[typing.Any] = []
        while len(items) < max_n:
            item = self.try_get()
            if item is None:
                break
            items.append(item)
        return items

    def get(self) -> Event:
        """Consumer side: event yielding the next descriptor."""
        if self.columnar:
            items = self._store.items
            head = items[0] if items else None
            event = self._store.get()
            if head is not None:
                # A non-empty store satisfies the get synchronously.
                self._packets -= batch_weight(head)
            return event
        return self._store.get()

    def try_get(self) -> typing.Any | None:
        item = self._store.try_get()
        if item is not None and self.columnar:
            self._packets -= batch_weight(item)
        return item

    def drain(self) -> list[typing.Any]:
        """Remove and return every queued item (failover salvage path)."""
        items: list[typing.Any] = []
        while True:
            item = self.try_get()
            if item is None:
                return items
            items.append(item)
