"""Host-level statistics: what the NF Manager tier knows (paper §3.1).

The "host-specific internal state" of the hierarchy: queue occupancies,
packet/byte counters, drops, per-service activity.  The SDNFV Application
reads these through the manager rather than tracking them centrally.
"""

from __future__ import annotations

import collections
import dataclasses

from repro.net.batch import columnar_kernel


@dataclasses.dataclass
class HostStats:
    """Counters maintained by one NF Manager."""

    rx_packets: int = 0
    rx_bytes: int = 0
    tx_packets: int = 0
    tx_bytes: int = 0
    dropped_ring_full: int = 0
    dropped_by_nf: int = 0
    dropped_no_rule: int = 0
    dropped_no_vm: int = 0
    policy_violations: int = 0
    sdn_requests: int = 0
    sdn_retries: int = 0
    sdn_timeouts: int = 0
    # Miss classifier: each flow's *first contact* with this host is
    # classified exactly once — it hit a pre-populated rule
    # (proactive_hits), hit a rule a previous miss pulled in
    # (reactive_hits), or missed and took the controller slow path
    # (reactive_misses).  miss_fallbacks counts miss queues released
    # without rules (degraded to the fallback destination or dropped).
    proactive_hits: int = 0
    reactive_hits: int = 0
    reactive_misses: int = 0
    miss_fallbacks: int = 0
    parallel_groups: int = 0
    failed_vms: int = 0
    requeued_packets: int = 0
    degraded_packets: int = 0
    lost_in_nf: int = 0
    # NIC-tier drops, mirrored from the ports so host reports see them
    # (frames rejected before the RX thread ever touched them are
    # otherwise invisible in manager-level accounting).
    nic_rx_dropped: int = 0
    nic_link_dropped: int = 0
    # Packet mempool traffic, mirrored from the host's PacketPool: hits
    # reuse a retired buffer, misses materialize a new pooled one (cold
    # start), exhausted allocations overflowed to the plain heap.
    pool_hits: int = 0
    pool_misses: int = 0
    pool_exhausted: int = 0
    # Burst pipeline: polls per stage and the batch-occupancy histogram
    # (batch size -> number of polls that returned that many packets).
    rx_batches: int = 0
    tx_batches: int = 0
    vm_batches: int = 0
    # Columnar kernel: batches built at RX, packets rematerialized to
    # descriptors for slow paths (the fallback rate), burst flow-lookup
    # rounds and their dedup hits, and batch split/merge structure
    # audits (splits at ring/budget boundaries, merges when one service
    # charge covers several batches).  All zero when columnar=False.
    columnar_batches: int = 0
    object_fallbacks: int = 0
    lookup_batches: int = 0
    lookup_batch_hits: int = 0
    batch_splits: int = 0
    batch_merges: int = 0
    per_service_packets: collections.Counter = dataclasses.field(
        default_factory=collections.Counter)
    per_port_tx_bytes: collections.Counter = dataclasses.field(
        default_factory=collections.Counter)
    rx_batch_occupancy: collections.Counter = dataclasses.field(
        default_factory=collections.Counter)
    tx_batch_occupancy: collections.Counter = dataclasses.field(
        default_factory=collections.Counter)
    vm_batch_occupancy: collections.Counter = dataclasses.field(
        default_factory=collections.Counter)

    def record_rx(self, size: int) -> None:
        self.rx_packets += 1
        self.rx_bytes += size

    def record_tx(self, port: str, size: int) -> None:
        self.tx_packets += 1
        self.tx_bytes += size
        self.per_port_tx_bytes[port] += size

    def record_service(self, service_id: str) -> None:
        self.per_service_packets[service_id] += 1

    def record_rx_batch(self, size: int) -> None:
        self.rx_batches += 1
        self.rx_batch_occupancy[size] += 1

    def record_tx_batch(self, size: int) -> None:
        self.tx_batches += 1
        self.tx_batch_occupancy[size] += 1

    def record_vm_batch(self, size: int) -> None:
        self.vm_batches += 1
        self.vm_batch_occupancy[size] += 1

    @columnar_kernel
    def record_rx_bulk(self, count: int, nbytes: int) -> None:
        """Batch-wide RX accounting — one update per burst, identical
        totals to ``count`` :meth:`record_rx` calls."""
        self.rx_packets += count
        self.rx_bytes += nbytes
        self.columnar_batches += 1

    @columnar_kernel
    def record_tx_bulk(self, port: str, count: int, nbytes: int) -> None:
        """Batch-wide TX accounting — identical totals to ``count``
        :meth:`record_tx` calls."""
        self.tx_packets += count
        self.tx_bytes += nbytes
        self.per_port_tx_bytes[port] += nbytes

    def flow_setups(self) -> int:
        """Flows whose first contact has been classified."""
        return (self.proactive_hits + self.reactive_hits
                + self.reactive_misses)

    def reactive_miss_rate(self) -> float:
        """Fraction of flow setups that took the controller slow path
        (the Fig. 1 / Fig. 10 quantity the proactive pipeline drives
        down).  0.0 when no flow has been classified yet."""
        setups = self.flow_setups()
        return self.reactive_misses / setups if setups else 0.0

    def batch_summary(self) -> dict[str, float]:
        """Mean batch occupancy per pipeline stage (1.0 = no batching)."""

        def mean(histogram: collections.Counter) -> float:
            polls = sum(histogram.values())
            if not polls:
                return 0.0
            return sum(size * count
                       for size, count in histogram.items()) / polls

        return {
            "rx_mean_batch": mean(self.rx_batch_occupancy),
            "tx_mean_batch": mean(self.tx_batch_occupancy),
            "vm_mean_batch": mean(self.vm_batch_occupancy),
        }

    def summary(self) -> dict[str, int]:
        """Scalar counters as a plain dict (for reports and tests)."""
        return {
            "rx_packets": self.rx_packets,
            "rx_bytes": self.rx_bytes,
            "tx_packets": self.tx_packets,
            "tx_bytes": self.tx_bytes,
            "dropped_ring_full": self.dropped_ring_full,
            "dropped_by_nf": self.dropped_by_nf,
            "dropped_no_rule": self.dropped_no_rule,
            "dropped_no_vm": self.dropped_no_vm,
            "policy_violations": self.policy_violations,
            "sdn_requests": self.sdn_requests,
            "sdn_retries": self.sdn_retries,
            "sdn_timeouts": self.sdn_timeouts,
            "proactive_hits": self.proactive_hits,
            "reactive_hits": self.reactive_hits,
            "reactive_misses": self.reactive_misses,
            "miss_fallbacks": self.miss_fallbacks,
            "parallel_groups": self.parallel_groups,
            "failed_vms": self.failed_vms,
            "requeued_packets": self.requeued_packets,
            "degraded_packets": self.degraded_packets,
            "lost_in_nf": self.lost_in_nf,
            "nic_rx_dropped": self.nic_rx_dropped,
            "nic_link_dropped": self.nic_link_dropped,
            "pool_hits": self.pool_hits,
            "pool_misses": self.pool_misses,
            "pool_exhausted": self.pool_exhausted,
            "rx_batches": self.rx_batches,
            "tx_batches": self.tx_batches,
            "vm_batches": self.vm_batches,
            "columnar_batches": self.columnar_batches,
            "object_fallbacks": self.object_fallbacks,
            "lookup_batches": self.lookup_batches,
            "lookup_batch_hits": self.lookup_batch_hits,
            "batch_splits": self.batch_splits,
            "batch_merges": self.batch_merges,
        }
