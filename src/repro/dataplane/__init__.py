"""The NFV host data plane: NF Manager, VMs, rings, and flow tables.

This package models one SDNFV host (paper §4): a user-space NF Manager with
RX / TX / Flow-Controller threads, per-VM lock-free ring buffer pairs,
zero-copy packet descriptors, an extended OpenFlow-style flow table scoped
by Service ID, parallel packet processing with reference counting, flow
lookup caching, and three load-balancing policies.
"""

from repro.dataplane.actions import (
    Drop,
    NfVerdict,
    ToPort,
    ToService,
    Verdict,
    resolve_parallel_verdicts,
)
from repro.dataplane.costs import HostCosts
from repro.dataplane.descriptors import PacketDescriptor
from repro.dataplane.flow_table import FlowTable, FlowTableEntry
from repro.dataplane.host import NfvHost
from repro.dataplane.load_balancer import LoadBalancePolicy
from repro.dataplane.manager import (
    DEFAULT_BURST_SIZE,
    ControlPlanePolicy,
    NfManager,
)
from repro.dataplane.messages import (
    ChangeDefault,
    NfMessage,
    RequestMe,
    SkipMe,
    UserMessage,
)
from repro.dataplane.rings import RingBuffer
from repro.dataplane.stats import HostStats
from repro.dataplane.vm import NfVm

__all__ = [
    "ChangeDefault",
    "ControlPlanePolicy",
    "DEFAULT_BURST_SIZE",
    "Drop",
    "FlowTable",
    "FlowTableEntry",
    "HostCosts",
    "HostStats",
    "LoadBalancePolicy",
    "NfManager",
    "NfMessage",
    "NfVerdict",
    "NfVm",
    "NfvHost",
    "PacketDescriptor",
    "RequestMe",
    "RingBuffer",
    "SkipMe",
    "ToPort",
    "ToService",
    "UserMessage",
    "Verdict",
    "resolve_parallel_verdicts",
]
