"""Packet descriptors: the small messages exchanged over ring buffers.

The paper's zero-copy design (§4.1) DMA's packets into shared huge pages and
passes lightweight descriptors between domains; §4.2 adds caching of flow
table lookup results inside the descriptor so the TX thread can skip hash
lookups.  ``cached_entry`` plus ``cached_generation`` model that cache: a
cached entry is only honoured while the flow table generation matches, so
dynamic rule updates invalidate stale descriptors naturally.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.dataplane.actions import Verdict
from repro.net.packet import Packet

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.dataplane.flow_table import FlowTableEntry


@dataclasses.dataclass(slots=True)
class PacketDescriptor:
    """One reference to a shared packet buffer, owned by one ring at a time.

    ``scope`` names where the packet currently is in the service graph: a
    NIC port name on ingress, a Service ID after an NF handled it.
    ``group_id`` links the copies fanned out to parallel VMs.

    Descriptors are what the burst pipeline moves in bulk — whole bursts
    of them sit in rings and in VM-held batches at once, so the class is
    slotted to keep a 64-packet burst's descriptor footprint small.
    """

    packet: Packet
    scope: str
    verdict: Verdict | None = None
    cached_entry: FlowTableEntry | None = None
    cached_generation: int = -1
    group_id: int | None = None
    group_index: int = 0
    vm_priority: int = 0
    ingress_at: int = 0

    def cache_lookup(self, entry: FlowTableEntry,
                     generation: int) -> None:
        """Record a lookup result for downstream threads."""
        self.cached_entry = entry
        self.cached_generation = generation

    def cache_valid(self, generation: int) -> bool:
        """Whether the cached lookup is still current."""
        return (self.cached_entry is not None
                and self.cached_generation == generation)

    def fork(self, scope: str, group_id: int,
             group_index: int) -> PacketDescriptor:
        """A parallel-group copy referencing the same packet buffer."""
        return PacketDescriptor(
            packet=self.packet,
            scope=scope,
            cached_entry=self.cached_entry,
            cached_generation=self.cached_generation,
            group_id=group_id,
            group_index=group_index,
            ingress_at=self.ingress_at,
        )

    def reset(self, packet: Packet, scope: str,
              ingress_at: int) -> PacketDescriptor:
        """Rewind a retired descriptor for reuse from a free list."""
        self.packet = packet
        self.scope = scope
        self.verdict = None
        self.cached_entry = None
        self.cached_generation = -1
        self.group_id = None
        self.group_index = 0
        self.vm_priority = 0
        self.ingress_at = ingress_at
        return self
