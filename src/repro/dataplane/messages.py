"""Cross-layer messages from NFs to the NF Manager (paper §3.4).

Each message applies to flows matching some criteria ``F`` (one flow or a
wildcard match):

- ``SkipMe(F, S)`` — any rule whose default leads to service S is rewired
  to S's own default, bypassing S.
- ``RequestMe(F, S)`` — every rule that has an edge to S makes S its
  default.
- ``ChangeDefault(F, S, T)`` — service S's default becomes T.
- ``UserMessage(S, key, value)`` — arbitrary application data for the NF
  Manager / SDNFV Application (the paper's ``Message`` call).

The message *types* live here in the dataplane (they are the NF↔Manager
wire protocol); validation policy lives in the SDNFV Application
(:mod:`repro.core.app`), which may veto messages from untrusted NFs or
fan them out to other hosts.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.net.flow import FlowMatch


@dataclasses.dataclass(frozen=True)
class NfMessage:
    """Base class: every message names the service that sent it."""

    sender_service: str


@dataclasses.dataclass(frozen=True)
class SkipMe(NfMessage):
    """Bypass ``service`` for flows matching ``flows``."""

    flows: FlowMatch = dataclasses.field(default_factory=FlowMatch.any)
    service: str = ""

    def __post_init__(self) -> None:
        if not self.service:
            raise ValueError("SkipMe needs a service to bypass")


@dataclasses.dataclass(frozen=True)
class RequestMe(NfMessage):
    """Make ``service`` the default next hop wherever an edge to it exists."""

    flows: FlowMatch = dataclasses.field(default_factory=FlowMatch.any)
    service: str = ""

    def __post_init__(self) -> None:
        if not self.service:
            raise ValueError("RequestMe needs a service to request")


@dataclasses.dataclass(frozen=True)
class ChangeDefault(NfMessage):
    """Update service ``service``'s default action to ``target``."""

    flows: FlowMatch = dataclasses.field(default_factory=FlowMatch.any)
    service: str = ""
    target: str = ""  # a Service ID or a port name prefixed "port:"

    def __post_init__(self) -> None:
        if not self.service or not self.target:
            raise ValueError("ChangeDefault needs a service and a target")


@dataclasses.dataclass(frozen=True)
class UserMessage(NfMessage):
    """Arbitrary (key, value) application data (the paper's Message call)."""

    key: str = ""
    value: typing.Any = None

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError("UserMessage needs a key")
