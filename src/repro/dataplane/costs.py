"""Per-operation cost model for the simulated data plane.

Absolute speeds of the paper's testbed enter the simulation only through
these constants; everything else is architecture.  Two cost families:

- **service costs** occupy a thread for that many nanoseconds per packet —
  they bound throughput (the slowest stage caps packets/second);
- **pipeline latencies** delay a packet without occupying any thread —
  they model DPDK batch polling and ring/cache transfer delay, which in
  the real system add microseconds of latency while per-packet CPU cost
  stays in the tens of nanoseconds.

Defaults are calibrated against the paper's own measurements:

- flow-table lookup 30 ns, min-queue scan 15 ns, SDN lookup 31 ms (§5.1);
- Table 2 round trips: 0 VM (DPDK) 26.66 µs; first VM +1.12 µs; each extra
  sequential VM ≈ +1.1 µs; each extra parallel VM ≈ +0.25–0.3 µs;
- Fig. 7: one socket sustains ≈5 Gbps at 64 B through a VM and line rate
  (10 Gbps) at ≥512 B.
"""

from __future__ import annotations

import dataclasses

from repro.net.batch import columnar_kernel
from repro.sim.units import MS, NS


@dataclasses.dataclass
class HostCosts:
    """Nanosecond cost constants for one simulated SDNFV host."""

    # §5.1 measured micro-costs.
    flow_lookup_ns: int = 30 * NS
    queue_scan_ns: int = 15 * NS
    sdn_lookup_ns: int = 31 * MS

    # Header metadata extraction preceding a flow-table lookup; the
    # descriptor lookup cache (§4.2) skips extract+lookup on later hops.
    header_extract_ns: int = 25 * NS

    # Service costs (occupy the thread).
    rx_service_ns: int = 60 * NS      # poll-mode receive + descriptor setup
    tx_service_ns: int = 40 * NS      # action resolution + enqueue out
    vm_service_ns: int = 120 * NS     # VM-side per-packet handling (no-op NF)

    # Per-batch poll charges (occupy the thread once per burst, however
    # many packets the poll returns).  The burst pipeline splits thread
    # work into this fixed per-poll part plus the per-packet service
    # costs above; with the calibrated defaults of zero, total occupancy
    # is identical at every burst size, so Table 2 / Fig. 7 fidelity is
    # preserved while the simulator does ~burst-fold less event work.
    # Raise these to study amortization: a burst of n packets then pays
    # poll_ns / n per packet instead of poll_ns each.
    rx_batch_poll_ns: int = 0         # one RX poll of the NIC ring
    tx_batch_poll_ns: int = 0         # one TX drain of a VM's done ring
    vm_batch_poll_ns: int = 0         # one VM poll of its RX ring

    # Parallel processing: per extra member, the descriptor copy into one
    # more ring (RX side) and one more verdict merge (TX side) are cheap
    # thread work; the dominant cost is cache contention on the shared
    # packet, modeled as a non-blocking delivery stagger per member.
    parallel_fanout_ns: int = 40 * NS
    parallel_merge_ns: int = 40 * NS
    parallel_stagger_ns: int = 160 * NS

    # Pipeline latency of one VM visit beyond thread occupancy: two ring
    # hops plus poll-batching pickup delay.  Non-blocking.
    vm_pipeline_latency_ns: int = 915 * NS

    # Base round trip outside the host: traffic generator + wire + NIC both
    # directions, excluding the egress serialization the simulation charges
    # explicitly.  Chosen so plain DPDK forwarding of 1000 B frames
    # measures Table 2's 26.66 µs.
    wire_base_rtt_ns: int = 25_710 * NS

    # Uniform jitter half-width on the wire RTT (Table 2 spread ≈ ±3 µs).
    wire_jitter_ns: int = 2_800 * NS

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            if getattr(self, field.name) < 0:
                raise ValueError(f"{field.name} must be non-negative")

    def sequential_visit_ns(self) -> int:
        """Latency one sequential no-op VM visit adds to a packet's RTT."""
        return (self.vm_pipeline_latency_ns + self.vm_service_ns
                + self.tx_service_ns + self.flow_lookup_ns
                + self.header_extract_ns)

    def parallel_extra_visit_ns(self) -> int:
        """Latency each *additional* parallel read-only VM adds."""
        return (self.parallel_fanout_ns + self.parallel_merge_ns
                + self.parallel_stagger_ns)

    def ingress_classify_ns(self) -> int:
        """RX-side work for a packet whose flow needs a fresh lookup."""
        return (self.rx_service_ns + self.header_extract_ns
                + self.flow_lookup_ns)

    # ------------------------------------------------------------------
    # Columnar per-batch accounting: one integer multiply replaces the
    # object pipeline's per-packet accumulation, with identical totals
    # (all costs are integers, so n * c == c summed n times).
    # ------------------------------------------------------------------

    @columnar_kernel
    def rx_burst_work_ns(self, count: int) -> int:
        """RX thread occupancy for a burst of ``count`` packets,
        excluding flow-lookup charges (added per distinct flow)."""
        return self.rx_batch_poll_ns + self.rx_service_ns * count

    @columnar_kernel
    def tx_burst_work_ns(self, count: int) -> int:
        """TX thread occupancy for draining ``count`` packets."""
        return self.tx_batch_poll_ns + self.tx_service_ns * count

    @columnar_kernel
    def vm_burst_work_ns(self, count: int, per_packet_cost_ns: int = 0
                         ) -> int:
        """VM thread occupancy for a burst of ``count`` packets of an NF
        with a flat per-packet processing cost."""
        return (self.vm_batch_poll_ns
                + (self.vm_service_ns + per_packet_cost_ns) * count)
