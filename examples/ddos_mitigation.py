"""DDoS detection with dynamic scrubber instantiation (paper §5.2/Fig. 9).

Run:  python examples/ddos_mitigation.py

A detector NF aggregates traffic volume *across flows* by source prefix —
data-plane state an SDN controller could not hold cheaply.  When a prefix
crosses the threshold the detector raises an alarm UserMessage; the SDNFV
Application boots a Scrubber VM through the NFV orchestrator (7.75 s),
the scrubber issues RequestMe to capture the traffic, and the attack dies
while legitimate traffic keeps flowing.
"""

from repro.control import NfvOrchestrator, SdnController
from repro.core import EXIT, SdnfvApp, ServiceGraph
from repro.dataplane import NfvHost
from repro.nfs import DdosDetector, DdosScrubber
from repro.nfs.ddos import DDOS_ALARM_KEY
from repro.sim import MS, S, Simulator
from repro.workloads import DdosRampWorkload


def main() -> None:
    sim = Simulator()
    controller = SdnController(sim)
    orchestrator = NfvOrchestrator(sim)
    app = SdnfvApp(sim, controller=controller, orchestrator=orchestrator)
    host = NfvHost(sim, name="scrub0", controller=controller)
    app.register_host(host)

    detector = DdosDetector("detector", threshold_gbps=0.1,
                            prefix_bits=16, window_ns=500 * MS)
    host.add_nf(detector, ring_slots=4096)

    graph = ServiceGraph("ddos-mitigation")
    graph.add_service("detector", read_only=True)
    graph.add_service("scrubber")
    graph.add_edge("detector", EXIT, default=True)
    graph.add_edge("detector", "scrubber")
    graph.add_edge("scrubber", EXIT, default=True)
    graph.set_entry("detector")
    app.deploy(graph)

    scrubbers = []

    def on_alarm(host_name, message):
        rate = message.value["rate_gbps"]
        print(f"[{sim.now / S:6.1f}s] ALARM from {host_name}: "
              f"prefix rate {rate * 1000:.0f} Mbps — booting scrubber")

        def factory():
            scrubber = DdosScrubber(
                "scrubber", attack_matches=[message.value["match"]])
            scrubbers.append(scrubber)
            return scrubber

        app.launch_nf(host_name, factory)

    app.on_message(DDOS_ALARM_KEY, on_alarm)

    workload = DdosRampWorkload(
        sim, host, normal_mbps=20.0, attack_start_ns=5 * S,
        attack_ramp_mbps_per_s=10.0, attack_max_mbps=400.0,
        packet_size=1024, window_ns=2 * S)
    sim.run(until=40 * S)

    print(f"\nscrubber booted in "
          f"{(orchestrator.launches[0].ready_at - orchestrator.launches[0].requested_at) / S:.2f} s"
          f" (paper: 7.75 s)")
    print("time   incoming   outgoing   (Mbps)")
    for start in range(0, 40, 5):
        incoming = workload.in_meter.mean_gbps(start * S,
                                               (start + 5) * S) * 1000
        outgoing = workload.out_meter.mean_gbps(start * S,
                                                (start + 5) * S) * 1000
        print(f"{start:3d}s   {incoming:8.1f}   {outgoing:8.1f}")
    print(f"\nattack packets scrubbed : {scrubbers[0].scrubbed}")
    print(f"legit packets preserved : {scrubbers[0].passed}")
    assert scrubbers and scrubbers[0].scrubbed > 0


if __name__ == "__main__":
    main()
