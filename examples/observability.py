"""Observability tour: event log, telemetry snapshots, packet taps.

Run:  python examples/observability.py

Shows the three observability surfaces around a running deployment:

- the **EventLog** records every control-plane action (rule installs,
  messages, VM launches) as a queryable timeline;
- **telemetry** gathers periodic HierarchySnapshots across all tiers;
- a **PacketTap** captures egress frames as a replayable trace.
"""

from repro.control import NfvOrchestrator, SdnController
from repro.core import EXIT, SdnfvApp, ServiceGraph
from repro.dataplane import NfvHost
from repro.dataplane.tap import PacketTap
from repro.metrics import EventLog
from repro.net import FiveTuple
from repro.nfs import FlowMonitor, NoOpNf
from repro.sim import MS, S, Simulator
from repro.workloads import FlowSpec, PktGen, trace_to_csv


def main() -> None:
    sim = Simulator()
    controller = SdnController(sim)
    orchestrator = NfvOrchestrator(sim)
    app = SdnfvApp(sim, controller=controller, orchestrator=orchestrator)
    log = EventLog(sim)
    app.attach_event_log(log)

    host = NfvHost(sim, name="edge", controller=controller)
    app.register_host(host)
    host.add_nf(FlowMonitor("monitor", report_interval_ns=2 * S))
    host.add_nf(NoOpNf("forwarder"))

    graph = ServiceGraph("observed")
    graph.add_service("monitor", read_only=True)
    graph.add_service("forwarder", read_only=True)
    graph.add_edge("monitor", "forwarder", default=True)
    graph.add_edge("forwarder", EXIT, default=True)
    graph.set_entry("monitor")
    app.deploy(graph)

    app.start_telemetry(interval_ns=3 * S)
    tap = PacketTap.on_egress(sim, host, "eth1", max_records=10_000)

    gen = PktGen(sim, host, measure_ports=())
    flow = FiveTuple("10.0.0.1", "10.0.0.2", 6, 40000, 80)
    gen.add_flow(FlowSpec(flow=flow, rate_mbps=1.0, packet_size=512,
                          start_ns=50 * MS, stop_ns=9 * S))
    sim.run(until=10 * S)

    print("=== control-plane event timeline ===")
    print(log.format())
    print(f"\nevent counts: {log.categories()}")

    print("\n=== latest hierarchy snapshot ===")
    print(app.telemetry[-1].format())

    print(f"\n=== packet tap ===")
    print(f"captured {len(tap)} frames; first 3 CSV rows:")
    print("\n".join(trace_to_csv(tap.to_trace()[:3]).splitlines()[:4]))

    flow_reports = [m for _h, m in app.messages_received
                    if m.key == "flow_stats"]
    print(f"\nflow-stats reports pushed up by the monitor NF: "
          f"{len(flow_reports)}")
    assert len(log) > 0 and len(app.telemetry) >= 3 and len(tap) > 0


if __name__ == "__main__":
    main()
