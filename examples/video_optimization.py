"""Dynamic video flow management (paper §2.2 and §5.3).

Run:  python examples/video_optimization.py

Video Detector -> Policy Engine -> Transcoder.  While the network has
headroom, the policy engine *releases* each flow with a ChangeDefault
message so its packets bypass the policy engine entirely.  When the
operator throttles (a policy change), the engine issues RequestMe to pull
every live flow back and retarget it at the transcoder — no SDN
controller involvement, and the output rate halves within a window.
"""

from repro.core import EXIT, SdnfvApp, ServiceGraph
from repro.dataplane import NfvHost
from repro.nfs import PolicyEngine, Transcoder, VideoFlowDetector
from repro.sim import S, Simulator
from repro.workloads import VideoSessionWorkload

THROTTLE_AT_S = 10
RUN_S = 25


def main() -> None:
    sim = Simulator()
    app = SdnfvApp(sim)
    host = NfvHost(sim, name="video0")
    app.register_host(host)

    detector = VideoFlowDetector("vd")
    policy = PolicyEngine("pe", detector_service="vd",
                          transcoder_service="tc", exit_port="eth1")
    transcoder = Transcoder("tc", keep_ratio=0.5)
    for nf in (detector, policy, transcoder):
        host.add_nf(nf, ring_slots=8192)

    graph = ServiceGraph("video-optimizer")
    graph.add_service("vd", read_only=True)
    graph.add_service("pe")
    graph.add_service("tc")
    graph.add_edge("vd", "pe", default=True)
    graph.add_edge("vd", EXIT)
    graph.add_edge("vd", "tc")
    graph.add_edge("pe", "tc", default=True)
    graph.add_edge("pe", EXIT)
    graph.add_edge("tc", EXIT, default=True)
    graph.set_entry("vd")
    app.deploy(graph)

    workload = VideoSessionWorkload(
        sim, host, concurrent_flows=50, mean_lifetime_ns=8 * S,
        per_flow_mbps=0.3, packet_size=512, window_ns=1 * S)

    sim.schedule(THROTTLE_AT_S * S, lambda: policy.set_throttle(True))
    sim.run(until=RUN_S * S)

    series = dict(workload.out_meter.pps_series())
    before = sum(series.get(t, 0) for t in range(3, 9)) / 6
    after = sum(series.get(t, 0) for t in range(14, 24)) / 10
    print("output rate before throttling: "
          f"{before:,.0f} packets/s")
    print("output rate after  throttling: "
          f"{after:,.0f} packets/s")
    print(f"video flows classified : {detector.video_flows}")
    print(f"flows pulled back to pe: {len(policy.flows_throttled)}")
    print(f"packets downsampled    : {transcoder.dropped}")
    assert after < before * 0.6
    print("\n-> the policy change halved the rate for ALL flows, "
          "including ones established before the change.")


if __name__ == "__main__":
    main()
