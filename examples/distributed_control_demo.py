"""Distributed control plane demo: a shard dies, the others absorb it.

Run:  python examples/distributed_control_demo.py

Three controller shards serve a two-host service chain *reactively*
(``proactive=False``: every new flow takes a packet-in to its owning
shard).  Mid-run a :class:`ControllerOutage` kills shard 0; the ring
failover absorbs its slice of flow space into the surviving shards, so
new flows keep getting rules while the shard is dark.  The event log
records the down/restored transitions, and
``mean_time_to_repair_ns`` reads the MTTR straight off the timeline.
"""

from repro.control import ControlPlane
from repro.core import EXIT, SdnfvApp, ServiceGraph
from repro.faults import ControllerOutage, FaultInjector, FaultPlan
from repro.metrics import (
    EventLog,
    control_plane_counters,
    counters_table,
    mean_time_to_repair_ns,
    recovery_spans,
)
from repro.net import FiveTuple, FlowMatch
from repro.nfs import NoOpNf
from repro.sim import MS, S, US, Simulator
from repro.topology import Link, NodeSpec, Topology, build_network
from repro.workloads import FlowSpec, PktGen

OUTAGE_AT = 120 * MS
OUTAGE_FOR = 200 * MS
DURATION = 500 * MS


def build_graph() -> ServiceGraph:
    graph = ServiceGraph("edge-chain")
    graph.add_service("fw", read_only=True)
    graph.add_service("nat", read_only=True)
    graph.add_edge("fw", "nat", default=True)
    graph.add_edge("nat", EXIT, default=True)
    graph.set_entry("fw")
    return graph


def main() -> None:
    sim = Simulator()
    topology = Topology()
    topology.add_node(NodeSpec(name="h0", cores=4))
    topology.add_node(NodeSpec(name="h1", cores=4))
    topology.add_link(Link(a="h0", b="h1", delay_ns=500 * US))
    network = build_network(sim, topology)

    log = EventLog(sim)
    plane = ControlPlane(sim, shards=3, failover=True, event_log=log)
    app = SdnfvApp(sim, controller=plane)
    placement = {"fw": "h0", "nat": "h1"}
    for name, host in network.hosts.items():
        app.register_host(host)
        host.manager.controller = plane
        host.manager.event_log = log
    for service, host_name in placement.items():
        network.hosts[host_name].add_nf(NoOpNf(service), ring_slots=256)

    plan = FaultPlan()
    plan.add(ControllerOutage(at_ns=OUTAGE_AT, down_ns=OUTAGE_FOR,
                              shard=0))
    FaultInjector(sim, plan, controller=plane).arm()

    # 24 per-flow slices, deployed reactively (``proactive=False``
    # installs nothing): every flow's first packet takes a packet-in to
    # its owning shard.  The stagger spreads arrivals across the run, so
    # flows landing while shard 0 is dark fail over to the survivors.
    gen = PktGen(sim, network.hosts["h0"], measure_ports=())
    delivered = []
    network.hosts["h1"].port("eth1").on_egress = delivered.append
    graph = build_graph()
    for index in range(24):
        flow = FiveTuple("10.0.1.1", "10.0.2.2", 6, 1000 + index, 80)
        app.deploy(graph, placement=placement, network=network,
                   match=FlowMatch.exact(flow), proactive=False)
        gen.add_flow(FlowSpec(flow=flow, rate_mbps=40.0, packet_size=256,
                              start_ns=index * 15 * MS,
                              stop_ns=DURATION - 20 * MS))
    sim.run(until=DURATION)

    hosts = list(network.hosts.values())
    print(counters_table(
        "control plane",
        control_plane_counters(plane, hosts=hosts, elapsed_ns=sim.now)))
    spans = recovery_spans(log.events, "controller_shard_down",
                           "controller_shard_restored", key="shard")
    mttr_ns = mean_time_to_repair_ns(log.events, "controller_shard_down",
                                     "controller_shard_restored",
                                     key="shard")
    formatted = [(shard, f"{down / S:.3f}s->{up / S:.3f}s")
                 for shard, down, up in spans]
    print(f"\noutage spans: {formatted}")
    print(f"MTTR: {mttr_ns / MS:.1f} ms")
    per_shard = [shard.stats.requests for shard in plane.shards]
    print(f"per-shard requests: {per_shard}  "
          f"failovers: {plane.stats.failovers}")

    # The demo's claims, checked: the outage really happened and was
    # repaired on schedule; flows owned by the dead shard were absorbed
    # (failover fired); every shard served part of the flow space; and
    # no flow setup was abandoned.
    assert spans == [(0, OUTAGE_AT, OUTAGE_AT + OUTAGE_FOR)]
    assert mttr_ns == OUTAGE_FOR
    assert plane.stats.failovers > 0
    assert all(requests > 0 for requests in per_shard)
    total_misses = sum(host.stats.reactive_misses for host in hosts)
    assert total_misses >= 24  # every flow set up reactively
    assert sum(host.stats.miss_fallbacks for host in hosts) == 0
    assert len(delivered) > 0  # traffic crossed the chain end to end


if __name__ == "__main__":
    main()
