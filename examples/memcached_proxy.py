"""Application-aware memcached proxying (paper §5.4, Fig. 12).

Run:  python examples/memcached_proxy.py

The proxy NF parses UDP memcached requests at layer 7, hashes the key to
pick a backend server, and rewrites the packet's destination in place —
zero-copy, no sockets, no kernel.  Responses flow straight back to the
client without touching the proxy.
"""

from repro.baselines import TwemproxyModel
from repro.dataplane import FlowTableEntry, NfvHost, ToPort, ToService
from repro.net import FlowMatch
from repro.nfs import MemcachedProxy
from repro.sim import MS, Simulator
from repro.workloads import MemcachedWorkload

SERVERS = [("10.8.0.10", 11211), ("10.8.0.11", 11211),
           ("10.8.0.12", 11211)]


def main() -> None:
    sim = Simulator()
    host = NfvHost(sim, name="proxy0")
    proxy = MemcachedProxy("mc", servers=SERVERS)
    host.add_nf(proxy, ring_slots=8192)
    host.install_rule(FlowTableEntry(
        scope="eth0", match=FlowMatch.any(),
        actions=(ToService("mc"),)))
    host.install_rule(FlowTableEntry(
        scope="mc", match=FlowMatch.any(), actions=(ToPort("eth1"),)))

    workload = MemcachedWorkload(sim, host,
                                 requests_per_second=500_000,
                                 key_space=5000, clients=32)
    sim.run(until=40 * MS)

    print(f"requests forwarded : {proxy.requests_forwarded:,}")
    print(f"mean RTT           : {workload.latency.mean_us():.1f} us")
    print("key distribution across backends:")
    total = sum(proxy.per_server.values())
    for (ip, port), count in sorted(proxy.per_server.items()):
        share = 100.0 * count / total
        print(f"  {ip}:{port}  {count:7,}  ({share:4.1f}%)")

    twem = TwemproxyModel()
    print(f"\nTwemProxy would saturate at ~{twem.capacity_rps:,.0f} "
          f"req/s; this proxy is running at 500,000 req/s with "
          f"{workload.latency.mean_us():.0f} us RTT.")
    assert proxy.requests_forwarded > 10_000
    assert len(proxy.per_server) == len(SERVERS)


if __name__ == "__main__":
    main()
