"""A service chain split across two hosts (paper Fig. 3).

Run:  python examples/multi_host_chain.py

The placement engine decides where each service of a J1–J3 chain runs;
the SDNFV Application compiles per-host flow rules (edges that cross
hosts become trunk-port forwards), and the Fabric carries frames between
the hosts so the chain runs end to end.
"""

from repro.core import EXIT, SdnfvApp, ServiceGraph
from repro.core.placement import (
    DivisionSolver,
    FlowRequest,
    PlacementProblem,
)
from repro.dataplane import NfvHost
from repro.net import FiveTuple, Packet
from repro.nfs import CounterNf
from repro.sim import MS, Simulator
from repro.topology import Fabric, Link, NodeSpec, Topology


def main() -> None:
    # 1. Plan: where should J1..J3 run for a host1 -> host2 flow?
    topology = Topology()
    topology.add_node(NodeSpec(name="host1", cores=2))
    topology.add_node(NodeSpec(name="host2", cores=2))
    topology.add_link(Link(a="host1", b="host2"))
    request = FlowRequest(flow_id="f0", entry="host1", exit="host2",
                          chain=("J1", "J2", "J3"), bandwidth_gbps=0.1)
    problem = PlacementProblem(topology=topology, flows=[request],
                               flows_per_core={"J1": 4, "J2": 4, "J3": 4})
    result = DivisionSolver(batch_size=1).solve(problem)
    mapping = result.placement_for(request)
    print("placement:", mapping)

    # 2. Build the physical network.
    sim = Simulator()
    app = SdnfvApp(sim)
    hosts = {}
    for name in ("host1", "host2"):
        hosts[name] = NfvHost(sim, name=name,
                              ports=("eth0", "eth1", "trunk"))
        app.register_host(hosts[name])
    fabric = Fabric(sim)
    for host in hosts.values():
        fabric.add_host(host)
    fabric.connect("host1", "trunk", "host2", "eth0",
                   bidirectional=False)
    fabric.connect("host2", "trunk", "host1", "eth0",
                   bidirectional=False)

    # 3. Start the NFs where the placement put them, deploy the graph.
    nfs = {}
    for service, node in mapping.items():
        nfs[service] = CounterNf(service)
        hosts[node].add_nf(nfs[service])
    graph = ServiceGraph("split-chain")
    for service in ("J1", "J2", "J3"):
        graph.add_service(service, read_only=True)
    graph.add_edge("J1", "J2", default=True)
    graph.add_edge("J2", "J3", default=True)
    graph.add_edge("J3", EXIT, default=True)
    graph.set_entry("J1")
    app.deploy(graph, ingress_port="eth0", exit_port="eth1",
               placement=mapping,
               inter_host_ports={("host1", "host2"): "trunk",
                                 ("host2", "host1"): "trunk"})

    # 4. Traffic.
    exit_host = hosts[mapping["J3"]]
    delivered = []
    exit_host.port("eth1").on_egress = delivered.append
    flow = FiveTuple("10.0.0.1", "10.0.0.2", 6, 40000, 80)
    entry_host = hosts[mapping["J1"]]
    for _ in range(10):
        entry_host.inject("eth0", Packet(flow=flow, size=256))
    sim.run(until=50 * MS)

    print(f"delivered end to end: {len(delivered)}/10")
    for service, nf in sorted(nfs.items()):
        print(f"  {service} on {mapping[service]}: "
              f"saw {nf.packets_seen} packets")
    print(f"frames carried by the inter-host fabric: "
          f"{fabric.frames_carried}")
    assert len(delivered) == 10


if __name__ == "__main__":
    main()
