"""Anomaly detection use case (paper §2.2, Fig. 3 left).

Run:  python examples/anomaly_detection.py

Firewall -> Sampler -> (DDoS-detector ∥ IDS) -> Scrubber: sampled traffic
is analyzed by the DDoS detector and IDS *in parallel* on a shared,
zero-copy packet; flows with malicious payloads are diverted to the
scrubber, which drops confirmed threats.
"""

from repro.core import DROP, EXIT, SdnfvApp, ServiceGraph
from repro.dataplane import NfvHost
from repro.net import FiveTuple, Packet
from repro.nfs import (
    DdosDetector,
    Firewall,
    IntrusionDetector,
    Sampler,
    Scrubber,
)
from repro.sim import MS, Simulator

ATTACKS = [
    "GET /login?user=admin' OR 1=1 -- HTTP/1.1",
    "POST /search q=UNION SELECT * FROM users HTTP/1.1",
    "GET /../../etc/passwd HTTP/1.1",
]


def build_graph() -> ServiceGraph:
    graph = ServiceGraph("anomaly-detection")
    graph.add_service("firewall", read_only=True)
    graph.add_service("sampler", read_only=True)
    graph.add_service("ddos", read_only=True)
    graph.add_service("ids", read_only=True)
    graph.add_service("scrubber")
    graph.add_edge("firewall", "sampler", default=True)
    graph.add_edge("sampler", EXIT, default=True)  # unsampled traffic
    graph.add_edge("sampler", "ddos")              # sampled traffic
    graph.add_edge("ddos", "ids", default=True)
    graph.add_edge("ids", EXIT, default=True)
    graph.add_edge("ids", "scrubber")
    graph.add_edge("scrubber", EXIT, default=True)
    graph.add_edge("scrubber", DROP)
    graph.set_entry("firewall")
    return graph


def main() -> None:
    sim = Simulator()
    app = SdnfvApp(sim)
    host = NfvHost(sim, name="edge0")
    app.register_host(host)

    firewall = Firewall("firewall")
    sampler = Sampler("sampler", analysis_service="ddos", sample_rate=1.0)
    ddos = DdosDetector("ddos", threshold_gbps=5.0)
    ids = IntrusionDetector("ids", alert_service="scrubber")
    scrubber = Scrubber("scrubber")
    for nf in (firewall, sampler, ddos, ids, scrubber):
        host.add_nf(nf)

    graph = build_graph()
    app.deploy(graph)
    print("parallel chains fused by the NF Manager:",
          graph.parallel_chains())

    out = []
    host.port("eth1").on_egress = out.append

    clean_flow = FiveTuple("10.1.0.5", "10.2.0.9", 6, 51000, 80)
    attack_flow = FiveTuple("66.6.6.6", "10.2.0.9", 6, 6666, 80)
    for i in range(20):
        host.inject("eth0", Packet(flow=clean_flow, size=512,
                                   payload="GET /index.html HTTP/1.1"))
    for payload in ATTACKS:
        host.inject("eth0", Packet(flow=attack_flow, size=512,
                                   payload=payload))
    sim.run(until=100 * MS)

    print(f"\nclean packets forwarded : {len(out)}")
    print(f"parallel groups         : {host.stats.parallel_groups}")
    print(f"IDS alerts              : {ids.alerts}")
    print(f"scrubber confirmed/drop : {scrubber.confirmed}")
    print(f"false positives passed  : {scrubber.false_positives}")
    assert len(out) == 20
    assert scrubber.confirmed == len(ATTACKS)


if __name__ == "__main__":
    main()
