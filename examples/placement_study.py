"""NF placement study (paper §3.5, Fig. 5).

Run:  python examples/placement_study.py

Places J1–J5 service chains on a Rocketfuel-like topology with the three
solvers — greedy first-fit, the exact MILP (eqs. 1–9 on HiGHS), and the
Division Heuristic — and compares flows placed, maximum utilization, and
solve time.
"""

from repro.core.placement import (
    DivisionSolver,
    FlowRequest,
    GreedySolver,
    MilpSolver,
    PlacementProblem,
)
from repro.core.placement.milp import InfeasiblePlacement
from repro.topology import rocketfuel_like

CHAIN = ("J1", "J2", "J3", "J4", "J5")
PER_CORE = {"J1": 10, "J2": 10, "J3": 10, "J4": 10, "J5": 4}


def build_problem(flow_count: int) -> PlacementProblem:
    topology = rocketfuel_like()  # 22 nodes / 64 edges, 2 cores each
    names = topology.node_names
    flows = [FlowRequest(
        flow_id=f"flow{i}",
        entry=names[(i * 5) % len(names)],
        exit=names[(i * 11 + 7) % len(names)],
        chain=CHAIN, bandwidth_gbps=0.25)
        for i in range(flow_count)]
    return PlacementProblem(topology=topology, flows=flows,
                            flows_per_core=PER_CORE)


def main() -> None:
    problem = build_problem(10)
    print(f"topology: 22 nodes / 64 edges, {problem.topology.total_cores()}"
          f" cores; {len(problem.flows)} flows, chain {'-'.join(CHAIN)}\n")
    print(f"{'solver':<10} {'placed':>6} {'max util':>9} "
          f"{'instances':>9} {'time':>8}")

    solvers = [
        GreedySolver(),
        DivisionSolver(batch_size=5, time_limit_per_batch_s=15,
                       mip_rel_gap=0.2),
        MilpSolver(time_limit_s=30, mip_rel_gap=0.2),
    ]
    for solver in solvers:
        try:
            result = solver.solve(problem)
        except InfeasiblePlacement as error:
            print(f"{solver.name:<10} infeasible: {error}")
            continue
        print(f"{result.solver:<10} {result.placed_count:>6} "
              f"{result.max_utilization:>9.3f} "
              f"{result.total_instances():>9} "
              f"{result.solve_time_s:>7.2f}s")

    result = DivisionSolver(batch_size=5, time_limit_per_batch_s=15,
                            mip_rel_gap=0.2).solve(problem)
    sample = problem.flows[0].flow_id
    print(f"\nexample route for {sample}:")
    for position, (service, node) in enumerate(zip(
            CHAIN, result.assignments[sample], strict=True)):
        print(f"  step {position + 1}: {service} on {node} "
              f"(via {'-'.join(result.routes[sample][position])})")


if __name__ == "__main__":
    main()
