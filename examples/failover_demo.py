"""Failover demo: kill the DPI NF mid-run and watch the system recover.

Run:  python examples/failover_demo.py

A fw -> dpi chain carries steady traffic when a :class:`NfCrash` fault
kills the DPI VM at t = 2 s.  The NF Manager's watchdog detects the dead
thread on its next heartbeat sweep, salvages the VM's ring, and — since
no replica is left — quarantines the service: every rule whose default
led to dpi is rewritten to dpi's own default edge, so traffic degrades
to fw -> eth1 instead of blackholing.  Meanwhile the SDNFV Application
promotes a standby process (250 ms); once it registers, the displaced
rules are reinstated and the recovery (MTTR, packets lost) is logged.

Everything lands in the EventLog, so the whole story is one timeline.
"""

from repro.control import NfvOrchestrator, SdnController
from repro.core import EXIT, SdnfvApp, ServiceGraph
from repro.dataplane import NfvHost, ToService
from repro.faults import FaultInjector, FaultPlan, NfCrash
from repro.metrics import EventLog, series_table
from repro.net import FiveTuple
from repro.nfs import NoOpNf
from repro.sim import MS, S, Simulator
from repro.workloads import FlowSpec, PktGen

CRASH_NS = 2 * S


def main() -> None:
    sim = Simulator()
    controller = SdnController(sim)
    orchestrator = NfvOrchestrator(sim)
    app = SdnfvApp(sim, controller=controller, orchestrator=orchestrator)
    log = EventLog(sim)
    app.attach_event_log(log)

    host = NfvHost(sim, name="edge", controller=controller)
    app.register_host(host)
    host.add_nf(NoOpNf("fw"))
    host.add_nf(NoOpNf("dpi"))

    # Sequential on purpose: read_only=True would fuse fw+dpi into a
    # parallel group, and a fan-out loses the dead member, not the flow.
    graph = ServiceGraph("protected-chain")
    graph.add_service("fw")
    graph.add_service("dpi")
    graph.add_edge("fw", "dpi", default=True)
    graph.add_edge("dpi", EXIT, default=True)
    graph.set_entry("fw")
    app.deploy(graph)

    # Watchdog + standby promotion for dpi (fw is left unprotected).
    watchdog = app.enable_failover(
        host, {"dpi": lambda: NoOpNf("dpi")},
        interval_ns=10 * MS, mode="standby_process")

    # The scripted failure: dpi's only replica dies at t = 2 s.
    plan = FaultPlan(seed=7)
    plan.add(NfCrash(at_ns=CRASH_NS, service="dpi"))
    FaultInjector(sim, plan, hosts=[host]).arm()

    # Steady 20 Mbps so the outage window actually carries packets.
    gen = PktGen(sim, host, seed=7)
    flow = FiveTuple("10.0.0.1", "10.0.0.2", 17, 4000, 4001)
    gen.add_flow(FlowSpec(flow=flow, rate_mbps=20.0, packet_size=800,
                          pacing="poisson", start_ns=100 * MS,
                          stop_ns=4 * S))

    # Sample how traffic is being served around the crash.
    degraded_defaults = []

    def sample():
        table = host.flow_table
        entry = table.lookup("fw", flow, now_ns=sim.now)
        degraded_defaults.append(
            (sim.now, str(entry.default_action),
             len(host.manager.vms_by_service.get("dpi", ()))))

    for at_ns in (CRASH_NS - 100 * MS, CRASH_NS + 100 * MS,
                  CRASH_NS + 400 * MS):
        sim.schedule(at_ns, sample)

    sim.run(until=4 * S)

    print("=== failover timeline (control events) ===")
    print(log.format(category="fault_injected"))
    print(log.format(category="nf_failure"))
    print(log.format(category="service_quarantined"))
    print(log.format(category="vm_launch"))
    print(log.format(category="service_restored"))
    print(log.format(category="nf_recovered"))

    print("\n=== fw's default route around the crash ===")
    print(series_table(
        "where fw sends traffic (ToService(dpi) = NF path)",
        {"t_s": [round(t / S, 2) for t, _d, _r in degraded_defaults],
         "fw_default": [d for _t, d, _r in degraded_defaults],
         "dpi_replicas": [r for _t, _d, r in degraded_defaults]}))

    recovery = watchdog.recoveries[0]
    print(f"\nMTTR: {recovery.mttr_ns / MS:.1f} ms "
          f"(detected {recovery.detected_at_ns / S:.3f} s, "
          f"replacement serving {recovery.recovered_at_ns / S:.3f} s)")
    print(f"packets: sent={gen.sent} received={gen.received} "
          f"lost_in_nf={host.stats.lost_in_nf} "
          f"degraded={host.stats.degraded_packets}")

    # The demo's claims, checked: degradation during the outage, the NF
    # path before and after, and a bounded recovery.
    assert degraded_defaults[0][1] == str(ToService("dpi"))
    assert degraded_defaults[1][1] != str(ToService("dpi"))
    assert degraded_defaults[2][1] == str(ToService("dpi"))
    assert recovery.mttr_ns <= 300 * MS
    assert gen.received > 0.95 * gen.sent


if __name__ == "__main__":
    main()
