"""QoS: DSCP marking + strict-priority egress on a congested link.

Run:  python examples/qos_priority.py

A DscpMarker NF classifies VoIP-like UDP traffic as Expedited Forwarding;
the egress is a PriorityNicPort on a deliberately slow (20 Mbps) link
congested by bulk TCP.  Marked traffic keeps millisecond latency while
bulk queues — the QoS capability the paper's middlebox discussion keeps
pointing at.
"""

from repro.dataplane import NfvHost
from repro.dataplane.qos import PriorityNicPort
from repro.net import FiveTuple, Packet
from repro.net.headers import PROTO_TCP, PROTO_UDP
from repro.net.qos import DSCP_EXPEDITED
from repro.nfs import DscpMarker, MarkingRule
from repro.net.flow import FlowMatch
from repro.sim import MS, S, Simulator

from repro.dataplane import FlowTableEntry, ToPort, ToService


def main() -> None:
    sim = Simulator()
    host = NfvHost(sim, name="edge", ports=("eth0",))
    slow_link = PriorityNicPort(sim, "uplink", line_rate_gbps=0.02)
    host.manager.ports["uplink"] = slow_link

    marker = DscpMarker("marker", rules=[
        MarkingRule(match=FlowMatch(protocol=PROTO_UDP),
                    dscp=DSCP_EXPEDITED)])
    host.add_nf(marker, ring_slots=8192)
    host.install_rule(FlowTableEntry(
        scope="eth0", match=FlowMatch.any(),
        actions=(ToService("marker"),)))
    host.install_rule(FlowTableEntry(
        scope="marker", match=FlowMatch.any(),
        actions=(ToPort("uplink"),)))

    voip = FiveTuple("10.0.0.5", "10.9.0.1", PROTO_UDP, 4000, 5060)
    bulk = FiveTuple("10.0.0.9", "10.9.0.2", PROTO_TCP, 5000, 80)
    latency = {"voip": [], "bulk": []}
    slow_link.on_egress = lambda p: latency[
        "voip" if p.flow.protocol == PROTO_UDP else "bulk"].append(
            sim.now - p.created_at)

    def traffic():
        for _ in range(300):
            # Bulk offered at ~33 Mbps over the 20 Mbps uplink.
            for _burst in range(2):
                host.inject("eth0", Packet(flow=bulk, size=1024,
                                           created_at=sim.now))
            host.inject("eth0", Packet(flow=voip, size=128,
                                       created_at=sim.now))
            yield sim.timeout(500_000)

    sim.process(traffic())
    sim.run(until=60 * S)

    mean_voip = sum(latency["voip"]) / len(latency["voip"]) / MS
    mean_bulk = sum(latency["bulk"]) / len(latency["bulk"]) / MS
    print(f"marked packets      : {marker.marked}")
    print(f"VoIP mean latency   : {mean_voip:8.2f} ms "
          f"({len(latency['voip'])} delivered)")
    print(f"bulk mean latency   : {mean_bulk:8.2f} ms "
          f"({len(latency['bulk'])} delivered, "
          f"{slow_link.tx_dropped} dropped at the full queue)")
    print(f"per-priority egress : {slow_link.per_priority_tx}")
    assert mean_voip < mean_bulk / 5


if __name__ == "__main__":
    main()
