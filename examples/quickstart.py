"""Quickstart: build an SDNFV host, deploy a service graph, send traffic.

Run:  python examples/quickstart.py

Builds the smallest end-to-end system: a simulated SDNFV host managed by
an SDNFV Application through a POX-like SDN controller, one firewall NF
and one counter NF chained in a service graph, and a traffic generator
measuring round-trip latency.
"""

from repro.control import SdnController
from repro.core import EXIT, SdnfvApp, ServiceGraph
from repro.dataplane import NfvHost
from repro.net import FiveTuple, FlowMatch
from repro.nfs import CounterNf, Firewall, FirewallRule
from repro.sim import MS, Simulator
from repro.workloads import FlowSpec, PktGen


def main() -> None:
    sim = Simulator()

    # Control plane: POX-like controller + the SDNFV Application.
    controller = SdnController(sim)
    app = SdnfvApp(sim, controller=controller)

    # Data plane: one host with two NFs.
    host = NfvHost(sim, name="host0", controller=controller)
    app.register_host(host)
    firewall = Firewall("firewall", rules=[
        FirewallRule(match=FlowMatch(dst_port=23), allow=False)])
    counter = CounterNf("counter")
    host.add_nf(firewall)
    host.add_nf(counter)

    # The service graph: eth0 -> firewall -> counter -> eth1.
    graph = ServiceGraph("quickstart")
    graph.add_service("firewall", read_only=True)
    graph.add_service("counter", read_only=True)
    graph.add_edge("firewall", "counter", default=True)
    graph.add_edge("counter", EXIT, default=True)
    graph.set_entry("firewall")
    app.deploy(graph)

    # Traffic: one HTTP flow and one telnet flow the firewall blocks.
    # Flows start at 40 ms — after the controller's rule push (one 31 ms
    # round trip) has installed the tables, as a real operator would.
    gen = PktGen(sim, host)
    web = FiveTuple("10.0.0.1", "10.0.0.2", 6, 40000, 80)
    telnet = FiveTuple("10.0.0.1", "10.0.0.2", 6, 40001, 23)
    gen.add_flow(FlowSpec(flow=web, rate_mbps=100.0, packet_size=512,
                          start_ns=40 * MS, stop_ns=90 * MS))
    gen.add_flow(FlowSpec(flow=telnet, rate_mbps=50.0, packet_size=256,
                          start_ns=40 * MS, stop_ns=90 * MS))

    sim.run(until=150 * MS)

    print("=== flow table (Fig. 4 style) ===")
    print(host.flow_table.dump())
    print()
    print(f"sent={gen.sent}  received={gen.received}  "
          f"blocked_by_firewall={firewall.denied}")
    print(f"mean RTT: {gen.latency.mean_us():.2f} us "
          f"(min {gen.latency.min_us():.1f} / "
          f"max {gen.latency.max_us():.1f})")
    packets, bytes_ = counter.totals()
    print(f"counter NF saw {packets} packets / {bytes_} bytes")
    assert gen.received > 0 and firewall.denied > 0


if __name__ == "__main__":
    main()
