#!/usr/bin/env python3
"""CLI for the repo-specific lint pass (``repro.analysis.lint``).

Usage::

    PYTHONPATH=src python tools/sdnfv_lint.py src/repro [more paths...]
    python tools/sdnfv_lint.py --list-rules
    python tools/sdnfv_lint.py --select SIM001,OWN001 src/repro
    python tools/sdnfv_lint.py --format sarif src > lint.sarif

Exit codes are stable for CI: 0 on a clean tree, 1 when any violation
is found (the blocking gate), 2 on usage errors.  ``--format json``
emits one object per violation; ``--format sarif`` emits a SARIF 2.1.0
log GitHub code scanning can ingest.  Suppress a single line with
``# sdnfv: noqa RULE``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

# Make the CLI runnable from a plain checkout without PYTHONPATH=src.
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.lint import RULES, LintViolation, lint_paths  # noqa: E402

#: Schema pinned so downstream consumers can validate uploaded artifacts.
_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                 "master/Schemata/sarif-schema-2.1.0.json")


def _violations_as_json(violations: list[LintViolation]) -> str:
    payload = [
        {
            "path": violation.path,
            "line": violation.line,
            "column": violation.col + 1,
            "rule_id": violation.rule_id,
            "message": violation.message,
        }
        for violation in violations
    ]
    return json.dumps(payload, indent=2)


def _violations_as_sarif(violations: list[LintViolation]) -> str:
    rules = [
        {
            "id": rule_id,
            "shortDescription": {"text": rule.summary},
        }
        for rule_id, rule in RULES.items()
    ]
    results = [
        {
            "ruleId": violation.rule_id,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": violation.path},
                        "region": {
                            "startLine": violation.line,
                            "startColumn": violation.col + 1,
                        },
                    },
                },
            ],
        }
        for violation in violations
    ]
    log = {
        "version": _SARIF_VERSION,
        "$schema": _SARIF_SCHEMA,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "sdnfv-lint",
                        "informationUri":
                            "https://example.invalid/sdnfv-lint",
                        "rules": rules,
                    },
                },
                "results": results,
            },
        ],
    }
    return json.dumps(log, indent=2)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="sdnfv_lint",
        description="SDNFV repo-specific static checks (sim determinism, "
                    "integer-ns discipline, hot-path __slots__, NF purity, "
                    "buffer-ownership balance, iteration safety).")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule IDs to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--format", dest="output_format", default="text",
                        choices=("text", "json", "sarif"),
                        help="violation output format (default: text)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, rule in RULES.items():
            print(f"{rule_id}  {rule.summary}")
        return 0

    if not args.paths:
        parser.error("no paths given (or use --list-rules)")

    select = None
    if args.select:
        select = [name.strip() for name in args.select.split(",")
                  if name.strip()]
        unknown = [name for name in select if name not in RULES]
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)}")

    violations = lint_paths(args.paths, select=select)
    if args.output_format == "json":
        print(_violations_as_json(violations))
    elif args.output_format == "sarif":
        print(_violations_as_sarif(violations))
    else:
        for violation in violations:
            print(violation)
    if violations:
        print(f"\n{len(violations)} violation(s) found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
