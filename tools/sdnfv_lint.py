#!/usr/bin/env python3
"""CLI for the repo-specific lint pass (``repro.analysis.lint``).

Usage::

    PYTHONPATH=src python tools/sdnfv_lint.py src/repro [more paths...]
    python tools/sdnfv_lint.py --list-rules
    python tools/sdnfv_lint.py --select SIM001,OWN001 src/repro

Exits 1 when any violation is found (this is the blocking CI gate), 0
on a clean tree.  Suppress a single line with ``# sdnfv: noqa RULE``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

# Make the CLI runnable from a plain checkout without PYTHONPATH=src.
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.lint import RULES, lint_paths  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="sdnfv_lint",
        description="SDNFV repo-specific static checks (sim determinism, "
                    "integer-ns discipline, hot-path __slots__, NF purity, "
                    "buffer-ownership balance, iteration safety).")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule IDs to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, rule in RULES.items():
            print(f"{rule_id}  {rule.summary}")
        return 0

    if not args.paths:
        parser.error("no paths given (or use --list-rules)")

    select = None
    if args.select:
        select = [name.strip() for name in args.select.split(",")
                  if name.strip()]
        unknown = [name for name in select if name not in RULES]
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)}")

    violations = lint_paths(args.paths, select=select)
    for violation in violations:
        print(violation)
    if violations:
        print(f"\n{len(violations)} violation(s) found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
