#!/usr/bin/env python3
"""Collate ``benchmarks/results/*.json`` into one trajectory table.

Every benchmark writes a per-run JSON artifact (via the ``report``
fixture) and some commit a cross-machine baseline; nothing collates
them, so the per-PR history lives in a dozen disconnected files.  This
tool flattens each result file to its headline numbers — wall-clock,
events/packet, throughput, and any speedup/reduction ratios — and
prints one aligned row per file, so a single CI artifact tracks the
whole performance trajectory::

    python tools/bench_trend.py                       # repo defaults
    python tools/bench_trend.py path/to/results --out trend.txt

``--out`` also writes ``<out>.json`` next to the table with the raw
flattened rows for downstream tooling.  Exits 1 only when no result
files are found (a misconfigured CI job), 0 otherwise.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

DEFAULT_RESULTS = (pathlib.Path(__file__).resolve().parent.parent
                   / "benchmarks" / "results")

#: Dotted-path suffixes for each table column, tried in order — the
#: shallowest match wins, so a top-level ``wall_s`` beats one nested
#: under a per-variant sub-dict.
COLUMN_KEYS = {
    "wall_s": ("wall_s",),
    "events_per_pkt": ("events_per_pkt", "events_per_packet"),
    "gbps": ("gbps", "output_mbps"),
}

#: Key fragments that mark a headline ratio (speedups, reductions,
#: baseline comparisons) — gathered into the trailing ``ratios`` cell.
RATIO_MARKERS = ("speedup", "reduction", "ratio")


def flatten(value, prefix: str = "") -> dict[str, float]:
    """Numeric scalar leaves of a nested JSON value, by dotted path."""
    flat: dict[str, float] = {}
    if isinstance(value, dict):
        for key, child in sorted(value.items()):
            path = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten(child, path))
    elif isinstance(value, int | float) and not isinstance(value, bool):
        flat[prefix] = float(value)
    return flat


def _pick(flat: dict[str, float], suffixes: tuple[str, ...]) -> float | None:
    for suffix in suffixes:
        matches = [path for path in flat
                   if path == suffix or path.endswith("." + suffix)]
        if matches:
            return flat[min(matches, key=lambda path: path.count("."))]
    return None


def _ratios(flat: dict[str, float]) -> dict[str, float]:
    found = {}
    for path, value in flat.items():
        leaf = path.rsplit(".", 1)[-1]
        if leaf.startswith("min_"):
            continue  # gate thresholds from config, not measurements
        # Whole-word match so "duration_ns" / "calibration_spin_s"
        # don't ride in on the "ratio" substring.
        if any(marker in leaf.split("_") for marker in RATIO_MARKERS):
            found.setdefault(leaf, value)
    return found


def collect(results_dir: pathlib.Path) -> list[dict]:
    """One summary row per result file, sorted by benchmark name."""
    rows = []
    for path in sorted(results_dir.glob("*.json")):
        if path.stem.startswith("bench_trend"):
            continue  # our own output: never self-aggregate
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            rows.append({"name": path.stem, "error": str(error)})
            continue
        flat = flatten(data)
        row = {"name": data.get("name", path.stem),
               "file": path.name,
               "baseline": "baseline" in path.stem}
        for column, suffixes in COLUMN_KEYS.items():
            row[column] = _pick(flat, suffixes)
        row["ratios"] = _ratios(flat)
        rows.append(row)
    return sorted(rows, key=lambda row: row["name"])


def render(rows: list[dict]) -> str:
    def cell(value, precision=3):
        return "-" if value is None else f"{value:.{precision}f}"

    lines = [f"{'benchmark':<28} {'kind':>8} {'wall_s':>8} "
             f"{'ev/pkt':>8} {'gbps':>8}  ratios"]
    for row in rows:
        if "error" in row:
            lines.append(f"{row['name']:<28} unreadable: {row['error']}")
            continue
        ratios = " ".join(f"{key}={value:.2f}"
                          for key, value in sorted(row["ratios"].items()))
        lines.append(
            f"{row['name']:<28} "
            f"{'baseline' if row['baseline'] else 'run':>8} "
            f"{cell(row['wall_s']):>8} "
            f"{cell(row['events_per_pkt'], 2):>8} "
            f"{cell(row['gbps'], 2):>8}  {ratios}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_trend",
        description="collate benchmarks/results/*.json into one "
                    "performance-trajectory table")
    parser.add_argument("results", nargs="?", type=pathlib.Path,
                        default=DEFAULT_RESULTS,
                        help=f"results directory (default: "
                             f"{DEFAULT_RESULTS})")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="also write the table here (plus the raw "
                             "rows as <out>.json)")
    args = parser.parse_args(argv)

    rows = collect(args.results)
    if not rows:
        print(f"no benchmark results under {args.results}",
              file=sys.stderr)
        return 1

    table = render(rows)
    print(table)
    if args.out:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(table + "\n")
        args.out.with_suffix(args.out.suffix + ".json").write_text(
            json.dumps(rows, indent=2, sort_keys=True) + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
