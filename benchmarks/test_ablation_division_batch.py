"""Ablation: Division Heuristic sub-problem size (§3.5).

The paper picks batches of ~5 flows "so as to compute the solution
quickly".  This sweep shows the trade-off: larger batches approach the
joint optimum (lower max utilization) at super-linear solve cost; batch
size 1 degenerates toward greedy-like quality.
"""


from repro.core.placement import DivisionSolver, FlowRequest, PlacementProblem
from repro.metrics import series_table
from repro.topology import rocketfuel_like

BATCH_SIZES = [1, 2, 5]


def build_problem():
    topology = rocketfuel_like()
    names = topology.node_names
    per_core = {"J1": 10, "J2": 10, "J3": 10, "J4": 10, "J5": 4}
    flows = [FlowRequest(
        flow_id=f"f{i}", entry=names[(3 * i) % len(names)],
        exit=names[(5 * i + 2) % len(names)],
        chain=("J1", "J2", "J3", "J4", "J5"), bandwidth_gbps=0.3)
        for i in range(10)]
    return PlacementProblem(topology=topology, flows=flows,
                            flows_per_core=per_core)


def test_ablation_division_batch_size(report, benchmark):
    def run():
        problem = build_problem()
        results = {}
        for batch in BATCH_SIZES:
            solver = DivisionSolver(batch_size=batch,
                                    time_limit_per_batch_s=12,
                                    mip_rel_gap=0.2)
            results[batch] = solver.solve(problem)
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    for batch, result in results.items():
        assert result.placed_count == 10, f"batch={batch}"
    # Bigger batches never produce a worse objective (some slack for the
    # MIP gap).
    assert (results[5].max_utilization
            <= results[1].max_utilization + 0.15)

    columns = {
        "batch_size": BATCH_SIZES,
        "max_util": [results[b].max_utilization for b in BATCH_SIZES],
        "instances": [results[b].total_instances() for b in BATCH_SIZES],
        "solve_s": [results[b].solve_time_s for b in BATCH_SIZES]}
    report("ablation_division_batch", series_table(
        "Ablation — Division Heuristic batch size (10 flows, J1–J5)",
        columns), metrics=columns)
