"""Fault recovery: MTTR and packet loss under an injected NF crash.

The ISSUE's acceptance scenario: a fw -> dpi chain under 100 Mbps of
Poisson traffic, the DPI NF crashes at t = 2 s, and the system recovers
automatically — the watchdog detects the dead VM, salvages its ring,
quarantines the service onto its default edge, and a standby-process
replacement (250 ms) takes over; quarantined rules are then reinstated.

Asserted: recovery completes inside a bounded window, no flow rule
outside the dead service's own scope keeps routing to it while it has no
replicas, every offered packet is either delivered (NF path or default
edge) or counted as dropped, and the whole timeline is deterministic for
a given seed.  Reported: the recovery-time distribution across seeds.
"""

from repro.control import NfvOrchestrator, SdnController
from repro.core import SdnfvApp
from repro.dataplane import NfvHost, ToService
from repro.faults import FaultInjector, FaultPlan, NfCrash
from repro.metrics import series_table
from repro.metrics.eventlog import EventLog
from repro.net import FiveTuple
from repro.sim import MS, S, US, Simulator
from repro.nfs import NoOpNf
from repro.workloads import FlowSpec, PktGen

from tests.conftest import install_chain

RATE_MBPS = 100.0
PACKET_SIZE = 1000          # ~12.2 kpps offered
CRASH_NS = 2 * S
LOAD_START_NS = int(1.5 * S)
LOAD_STOP_NS = int(2.5 * S)
RUN_NS = int(2.8 * S)       # lets the pipeline drain after load stops
WATCHDOG_INTERVAL_NS = 10 * MS


def run_scenario(seed: int, jitter_ns: int = 0):
    sim = Simulator()
    controller = SdnController(sim, service_time_ns=100 * US,
                               propagation_ns=100 * US)
    orchestrator = NfvOrchestrator(sim)
    app = SdnfvApp(sim, controller=controller, orchestrator=orchestrator)
    host = NfvHost(sim, name="h0", controller=controller, seed=seed)
    app.register_host(host)
    log = EventLog(sim)
    app.attach_event_log(log)
    host.add_nf(NoOpNf("fw"))
    host.add_nf(NoOpNf("dpi"))
    install_chain(host, ["fw", "dpi"])

    watchdog = app.enable_failover(
        host, {"dpi": lambda: NoOpNf("dpi")},
        interval_ns=WATCHDOG_INTERVAL_NS, mode="standby_process")

    plan = FaultPlan(seed=seed)
    plan.add(NfCrash(at_ns=CRASH_NS, jitter_ns=jitter_ns, service="dpi"))
    FaultInjector(sim, plan, hosts=[host]).arm()

    gen = PktGen(sim, host, seed=seed)
    flow = FiveTuple("10.0.0.1", "10.0.0.2", 17, 5000, 5001)
    gen.add_flow(FlowSpec(flow=flow, rate_mbps=RATE_MBPS,
                          packet_size=PACKET_SIZE, pacing="poisson",
                          start_ns=LOAD_START_NS, stop_ns=LOAD_STOP_NS))

    # Mid-outage probe: after detection but before the replacement is
    # ready, nothing outside dpi's own scope may still route to it.
    quarantine_seen = {}

    def probe():
        table = host.flow_table
        quarantine_seen["stale_defaults"] = sum(
            1 for scope in table.scopes() if scope != "dpi"
            for entry in table.entries(scope)
            if entry.default_action == ToService("dpi"))
        quarantine_seen["replicas"] = len(
            host.manager.vms_by_service.get("dpi", ()))

    probe_at = plan.fire_time_ns(0) + WATCHDOG_INTERVAL_NS + 50 * MS
    sim.schedule(probe_at, probe)

    sim.run(until=RUN_NS)

    stats = host.stats
    lost = (stats.lost_in_nf + stats.dropped_no_vm + stats.dropped_no_rule
            + stats.dropped_ring_full
            + sum(port.rx_dropped + port.link_dropped
                  for port in host.manager.ports.values()))
    return {
        "sent": gen.sent,
        "received": gen.received,
        "lost": lost,
        "quarantine": quarantine_seen,
        "recoveries": [(r.detected_at_ns, r.recovered_at_ns,
                        r.lost_packets) for r in watchdog.recoveries],
        # vm_id is a process-global counter, so report liveness only.
        "replicas": [vm.failed
                     for vm in host.manager.vms_by_service["dpi"]],
        "timeline": [(event.timestamp_ns, event.category)
                     for event in log.events],
    }


def test_fault_recovery(report):
    result = run_scenario(seed=0)

    # Recovered automatically, exactly once, within the bounded window:
    # one watchdog period to detect + the 250 ms standby launch + slack.
    assert len(result["recoveries"]) == 1
    detected_ns, recovered_ns, _lost = result["recoveries"][0]
    assert CRASH_NS <= detected_ns <= CRASH_NS + 2 * WATCHDOG_INTERVAL_NS
    mttr_ns = recovered_ns - detected_ns
    assert mttr_ns <= 250 * MS + 2 * WATCHDOG_INTERVAL_NS

    # While dpi had no replicas, zero rules elsewhere still routed to it.
    assert result["quarantine"] == {"stale_defaults": 0, "replicas": 0}
    # Afterwards exactly one live replica serves the restored rules.
    assert result["replicas"] == [False]

    # Packet conservation: delivered via the NF path or the default edge,
    # or counted as dropped — nothing vanished.
    assert result["received"] == result["sent"] - result["lost"]
    assert result["received"] > 0.95 * result["sent"]

    # Same seed, same timeline — bit-for-bit.
    assert run_scenario(seed=0) == result

    # Recovery-time distribution across seeds (crash time jittered).
    rows = []
    for seed in (1, 2, 3):
        run = run_scenario(seed=seed, jitter_ns=50 * MS)
        detected, recovered, lost = run["recoveries"][0]
        rows.append((seed, detected / MS, (recovered - detected) / MS,
                     lost, run["lost"]))
    columns = {
        "seed": [row[0] for row in rows],
        "detected_ms": [round(row[1], 2) for row in rows],
        "mttr_ms": [round(row[2], 2) for row in rows],
        "lost_outage": [row[3] for row in rows],
        "lost_total": [row[4] for row in rows]}
    report("fault_recovery", series_table(
        "Fault recovery — dpi crash under 100 Mbps Poisson load "
        "(standby_process failover)", columns), metrics=columns)
