"""Figure 9: DDoS detection and mitigation with dynamic VM instantiation.

Paper timeline (200 s): normal traffic at a constant 500 Mbps; a DDoS ramp
starts at 30 s; when incoming traffic from the attack prefix crosses the
3.2 Gbps threshold, the detector raises an alarm through the NF Manager to
the SDNFV Application, which boots a Scrubber VM (7.75 s); the scrubber
issues RequestMe and drops the attack — outgoing traffic returns to the
normal level while incoming keeps rising.

Scaling: rates are 1:25 (normal 20 Mbps, threshold 128 Mbps) so packet
counts stay tractable; the timeline (including the real 7.75 s VM boot)
is unscaled.
"""

import pytest

from repro.control import NfvOrchestrator, SdnController
from repro.core import SdnfvApp, ServiceGraph
from repro.core.service_graph import EXIT
from repro.dataplane import NfvHost
from repro.metrics import series_table
from repro.nfs import DdosDetector, DdosScrubber
from repro.nfs.ddos import DDOS_ALARM_KEY
from repro.sim import MS, S, Simulator
from repro.workloads import DdosRampWorkload

RATE_SCALE = 25.0  # paper rate / simulated rate
NORMAL_MBPS = 500.0 / RATE_SCALE
THRESHOLD_GBPS = 3.2 / RATE_SCALE
ATTACK_START_S = 30
RUN_S = 120


def run_fig9():
    sim = Simulator()
    controller = SdnController(sim)
    orchestrator = NfvOrchestrator(sim)
    app = SdnfvApp(sim, controller=controller, orchestrator=orchestrator)
    host = NfvHost(sim, name="ddos0", controller=controller)
    app.register_host(host)
    detector = DdosDetector("detector", threshold_gbps=THRESHOLD_GBPS,
                            prefix_bits=16, window_ns=500 * MS)
    host.add_nf(detector, ring_slots=4096)

    graph = ServiceGraph("ddos-mitigation")
    graph.add_service("detector", read_only=True)
    graph.add_service("scrubber")
    graph.add_edge("detector", EXIT, default=True)
    graph.add_edge("detector", "scrubber")
    graph.add_edge("scrubber", EXIT, default=True)
    graph.set_entry("detector")
    app.deploy(graph, proactive=True)

    scrubbers = []
    boot_times = []

    def boot_scrubber(host_name, message):
        boot_times.append(sim.now)

        def factory():
            scrubber = DdosScrubber(
                "scrubber", attack_matches=[message.value["match"]])
            scrubbers.append(scrubber)
            return scrubber

        app.launch_nf(host_name, factory)

    app.on_message(DDOS_ALARM_KEY, boot_scrubber)

    workload = DdosRampWorkload(
        sim, host, normal_mbps=NORMAL_MBPS,
        attack_start_ns=ATTACK_START_S * S,
        attack_ramp_mbps_per_s=2.5,
        attack_max_mbps=250.0 / RATE_SCALE * 25,  # keep ramping past it
        packet_size=1024, window_ns=2 * S)
    sim.run(until=RUN_S * S)
    return sim, workload, detector, scrubbers, boot_times, orchestrator


def test_fig9_ddos_detection_and_scrubbing(report, benchmark):
    (sim, workload, detector, scrubbers, boot_times,
     orchestrator) = benchmark.pedantic(run_fig9, iterations=1, rounds=1)

    assert detector.alarms_sent == 1
    assert len(scrubbers) == 1
    # VM boot took the paper's 7.75 s.
    launch = orchestrator.launches[0]
    assert launch.ready_at - launch.requested_at == 7_750_000_000

    alarm_s = boot_times[0] / S
    ready_s = launch.ready_at / S
    # The alarm fired after the ramp crossed the threshold.
    expected_cross = ATTACK_START_S + (THRESHOLD_GBPS * 1000
                                       - NORMAL_MBPS * 0) / 2.5
    assert alarm_s == pytest.approx(expected_cross, abs=8.0)

    # Before mitigation: outgoing tracked incoming (everything passed).
    in_before = workload.in_meter.mean_gbps(
        int((ready_s - 6) * S), int((ready_s - 1) * S))
    out_before = workload.out_meter.mean_gbps(
        int((ready_s - 6) * S), int((ready_s - 1) * S))
    assert out_before == pytest.approx(in_before, rel=0.15)

    # After mitigation: outgoing back to ~normal while incoming rises.
    in_after = workload.in_meter.mean_gbps(int((RUN_S - 20) * S),
                                           int(RUN_S * S))
    out_after = workload.out_meter.mean_gbps(int((RUN_S - 20) * S),
                                             int(RUN_S * S))
    normal_gbps = NORMAL_MBPS / 1000.0
    assert out_after == pytest.approx(normal_gbps, rel=0.3)
    assert in_after > 3 * out_after
    assert scrubbers[0].scrubbed > 0
    assert scrubbers[0].passed > 0  # normal traffic not scrubbed

    # Timeline table (the Fig. 9 curves, 10 s buckets).
    times, in_series, out_series = [], [], []
    for start in range(0, RUN_S, 10):
        times.append(start)
        in_series.append(workload.in_meter.mean_gbps(start * S,
                                                     (start + 10) * S))
        out_series.append(workload.out_meter.mean_gbps(start * S,
                                                       (start + 10) * S))
    columns = {"t_s": times, "incoming": in_series,
               "outgoing": out_series}
    report("fig9_ddos", series_table(
        f"Fig. 9 — in/out rate (Gbps, rates scaled 1:{RATE_SCALE:.0f}); "
        f"alarm at {alarm_s:.1f}s, scrubber ready at {ready_s:.1f}s",
        columns),
        metrics={**columns, "alarm_s": alarm_s, "scrubber_ready_s": ready_s})
