"""Table 2: round-trip latency with no-op NFs, sequential vs parallel.

Paper (1000 B packets at 100 Mbps, NFs that do no per-packet work):

    0VM (dpdk)        26.66 µs   (min 23 / max 29)
    1VM               27.78 µs
    2VM (parallel)    28.02 µs
    3VM (parallel)    28.38 µs
    2VM (sequential)  28.86 µs
    3VM (sequential)  29.96 µs
"""

import pytest

from repro.baselines import make_dpdk_forwarder
from repro.dataplane import NfvHost
from repro.metrics import comparison_table
from repro.nfs import NoOpNf
from repro.sim import MS, Simulator
from repro.workloads import FlowSpec, PktGen
from repro.net import FiveTuple

from tests.conftest import install_chain

PAPER_AVG_US = {
    "0VM (dpdk)": 26.66,
    "1VM": 27.78,
    "2VM (parallel)": 28.02,
    "3VM (parallel)": 28.38,
    "2VM (sequential)": 29.96 - 1.10,  # 28.86
    "3VM (sequential)": 29.96,
}


def measure(config: str) -> dict:
    sim = Simulator()
    if config == "0VM (dpdk)":
        host = make_dpdk_forwarder(sim)
    else:
        vms = int(config[0])
        parallel = "parallel" in config
        host = NfvHost(sim, name=config)
        services = [f"noop{i}" for i in range(vms)]
        for service in services:
            host.add_nf(NoOpNf(service))
        install_chain(host, services)
        if parallel and vms > 1:
            host.manager.register_parallel_chain(services)
    flow = FiveTuple("10.0.0.1", "10.0.0.2", 6, 1234, 80)
    gen = PktGen(sim, host)
    gen.add_flow(FlowSpec(flow=flow, rate_mbps=100.0, packet_size=1000,
                          stop_ns=60 * MS))
    sim.run(until=100 * MS)
    assert gen.received > 500
    return {"avg": gen.latency.mean_us(), "min": gen.latency.min_us(),
            "max": gen.latency.max_us()}


def test_table2_noop_latency(report, benchmark):
    results = benchmark.pedantic(
        lambda: {config: measure(config) for config in PAPER_AVG_US},
        iterations=1, rounds=1)

    rows = []
    for config, paper_avg in PAPER_AVG_US.items():
        measured = results[config]
        rows.append((config, f"{paper_avg:.2f} us",
                     f"{measured['avg']:.2f} us "
                     f"({measured['min']:.0f}/{measured['max']:.0f})"))
        # Within 0.5 µs of the paper's mean.
        assert measured["avg"] == pytest.approx(paper_avg, abs=0.5), config

    # Orderings the paper's table shows.
    avg = {config: results[config]["avg"] for config in results}
    assert avg["0VM (dpdk)"] < avg["1VM"]
    assert avg["1VM"] < avg["2VM (parallel)"]
    assert avg["2VM (parallel)"] < avg["2VM (sequential)"]
    assert avg["3VM (parallel)"] < avg["3VM (sequential)"]
    # Parallel scaling is much flatter than sequential scaling.
    parallel_step = avg["3VM (parallel)"] - avg["2VM (parallel)"]
    sequential_step = avg["3VM (sequential)"] - avg["2VM (sequential)"]
    assert parallel_step < sequential_step / 2

    report("table2_noop_latency", comparison_table(
        "Table 2 — avg RTT, no-op NFs (measured shows min/max)",
        rows, headers=("configuration", "paper avg", "measured avg")),
        metrics={"configurations": list(results),
                 "paper_avg_us": list(PAPER_AVG_US.values()),
                 "measured_avg_us": [results[c]["avg"] for c in results],
                 "measured_min_us": [results[c]["min"] for c in results],
                 "measured_max_us": [results[c]["max"] for c in results]})
