"""Ablation: overload-driven autoscaling and VM launch modes.

Two of the paper's dynamic-management claims quantified:

1. §3.1's NF Managers "track load levels of NFs ... and respond to
   failure or overload": with autoscaling on, an overloaded service gets
   a replica and queueing latency collapses; without it, latency keeps
   growing with the backlog.
2. §5.2's note that the 7.75 s VM boot "can be further reduced by just
   starting a new process in a stand-by VM or by using fast VM restore
   techniques": the same scenario under the three launch modes shows the
   recovery-time difference.
"""

from repro.control import NfvOrchestrator
from repro.core import SdnfvApp
from repro.dataplane import NfvHost
from repro.metrics import series_table
from repro.net import FiveTuple, Packet
from repro.nfs import ComputeNf
from repro.sim import MS, S, Simulator

from tests.conftest import install_chain

NF_COST_NS = 60_000          # one replica sustains ~16.7 kpps
OFFERED_GAP_NS = 25_000      # 40 kpps offered: 2.4x overload
RUN_NS = int(1.5 * S)


def run_scenario(autoscale: bool, mode: str = "standby_process"):
    sim = Simulator()
    orchestrator = NfvOrchestrator(sim)
    app = SdnfvApp(sim, orchestrator=orchestrator)
    host = NfvHost(sim, name=f"auto-{autoscale}-{mode}")
    app.register_host(host)
    host.add_nf(ComputeNf("svc", cost_ns=NF_COST_NS), ring_slots=16384)
    install_chain(host, ["svc"])
    if autoscale:
        app.enable_autoscaling(
            host, {"svc": lambda: ComputeNf("svc", cost_ns=NF_COST_NS)},
            interval_ns=2 * MS, threshold_slots=50, max_replicas=3,
            mode=mode)
    latencies_late = []

    def on_out(packet):
        if sim.now > RUN_NS * 2 // 3:
            latencies_late.append(sim.now - packet.created_at)

    host.port("eth1").on_egress = on_out

    def generator():
        index = 0
        while sim.now < RUN_NS:
            flow = FiveTuple("10.0.0.1", "10.0.0.2", 6,
                             1000 + index % 64, 80)
            host.inject("eth0", Packet(flow=flow, size=128,
                                       created_at=sim.now))
            index += 1
            yield sim.timeout(OFFERED_GAP_NS)

    sim.process(generator())
    sim.run(until=RUN_NS)
    replica_count = len(host.manager.vms_by_service["svc"])
    ready_at = (orchestrator.launches[0].ready_at / S
                if orchestrator.launches else None)
    mean_late_us = (sum(latencies_late) / len(latencies_late) / 1000
                    if latencies_late else float("inf"))
    return replica_count, mean_late_us, ready_at


def test_ablation_autoscaling(report, benchmark):
    def run():
        baseline = run_scenario(autoscale=False)
        scaled = {mode: run_scenario(autoscale=True, mode=mode)
                  for mode in ("standby_process", "restore")}
        return baseline, scaled

    baseline, scaled = benchmark.pedantic(run, iterations=1, rounds=1)
    base_replicas, base_latency, _ = baseline

    assert base_replicas == 1
    standby_replicas, standby_latency, standby_ready = scaled[
        "standby_process"]
    assert standby_replicas >= 2
    # With the replica in service, late-window latency is far below the
    # ever-growing backlog of the unscaled run.
    assert standby_latency < base_latency / 3
    # Faster launch modes are ready sooner; a 7.75 s cold boot would not
    # even finish inside this scenario's 1.5 s window.
    assert standby_ready < scaled["restore"][2]
    from repro.control import NfvOrchestrator
    from repro.sim import Simulator as _Sim
    orchestrator = NfvOrchestrator(_Sim())
    assert (orchestrator.launch_time_ns("standby_process")
            < orchestrator.launch_time_ns("restore")
            < orchestrator.launch_time_ns("boot"))

    rows = ["no autoscaling", "standby_process", "restore"]
    columns = {
        "configuration": rows,
        "replicas": [base_replicas] + [scaled[m][0] for m in rows[1:]],
        "latency_us": [base_latency] + [scaled[m][1] for m in rows[1:]],
        "replica_ready_s": [0.0] + [scaled[m][2] or 0.0
                                    for m in rows[1:]]}
    report("ablation_autoscaling", series_table(
        "Ablation — autoscaling under 2.4x overload "
        "(late-window mean latency)", columns), metrics=columns)
