"""Ablation: parallel-chain fusion vs sequential chaining by length.

Extends Fig. 6: how does end-to-end latency scale with chain length for
sequential vs parallel execution of read-only compute NFs?  Sequential
latency grows linearly with length; parallel latency stays nearly flat.
"""


from repro.dataplane import NfvHost
from repro.metrics import series_table
from repro.net import FiveTuple
from repro.nfs import ComputeNf
from repro.sim import MS, Simulator
from repro.workloads import FlowSpec, PktGen

from tests.conftest import install_chain

LENGTHS = [1, 2, 3, 4]
COMPUTE_NS = 20_000


def measure(length: int, parallel: bool) -> float:
    sim = Simulator()
    host = NfvHost(sim, name=f"len{length}-{parallel}")
    services = [f"c{i}" for i in range(length)]
    for service in services:
        host.add_nf(ComputeNf(service, cost_ns=COMPUTE_NS))
    install_chain(host, services)
    if parallel and length > 1:
        host.manager.register_parallel_chain(services)
    flow = FiveTuple("10.0.0.1", "10.0.0.2", 6, 1, 80)
    gen = PktGen(sim, host)
    gen.add_flow(FlowSpec(flow=flow, rate_mbps=100.0, packet_size=1000,
                          stop_ns=40 * MS))
    sim.run(until=80 * MS)
    return gen.latency.mean_us()


def test_ablation_parallel_chain_length(report, benchmark):
    def run():
        sequential = [measure(length, parallel=False)
                      for length in LENGTHS]
        parallel = [measure(length, parallel=True) for length in LENGTHS]
        return sequential, parallel

    sequential, parallel = benchmark.pedantic(run, iterations=1, rounds=1)

    # Sequential grows ~20 µs (the compute) per added NF.
    for shorter, longer in zip(sequential, sequential[1:]):
        assert longer - shorter > 15.0
    # Parallel stays nearly flat (< 2 µs per added NF).
    for shorter, longer in zip(parallel, parallel[1:]):
        assert longer - shorter < 2.0
    # At length 4 the gap is roughly 3 NF visits' worth of compute.
    assert sequential[-1] - parallel[-1] > 2.2 * COMPUTE_NS / 1000

    columns = {"chain_length": LENGTHS,
               "sequential": sequential,
               "parallel": parallel}
    report("ablation_parallel_chains", series_table(
        "Ablation — mean RTT (us) vs chain length, 20 us/packet NFs",
        columns), metrics=columns)
