"""Ablation: data-plane burst size (DPDK-style batched RX/ring/NF/TX).

The NF Manager moves packets in bursts of up to ``burst_size``
descriptors per ring operation, the way DPDK's ``rte_eth_rx_burst`` /
``rte_ring_dequeue_burst`` do.  Batching does not change what the model
predicts (simulated throughput and packet accounting are identical —
per-batch poll costs default to 0 ns), but it collapses the simulator
kernel work per packet: one scheduled event moves a whole burst.  This
ablation sweeps the knob on the Fig. 7 small-packet workload (2-VM
sequential chain, 64 B at line rate) and reports model outputs
(throughput, p50/p99 RTT) alongside simulator-efficiency metrics
(kernel events per packet, wall-clock time).
"""

import time

import pytest

from repro.dataplane import NfvHost
from repro.metrics import series_table
from repro.net import FiveTuple
from repro.nfs import NoOpNf
from repro.sim import MS, Simulator
from repro.workloads import FlowSpec, PktGen

from tests.conftest import install_chain

BURSTS = [1, 4, 8, 16, 32, 64]
WINDOW_NS = 3 * MS


def measure(burst_size: int) -> dict:
    sim = Simulator()
    host = NfvHost(sim, name=f"burst{burst_size}", burst_size=burst_size)
    services = ["noop0", "noop1"]
    for service in services:
        host.add_nf(NoOpNf(service), ring_slots=1024)
    install_chain(host, services)
    flow = FiveTuple("10.0.0.1", "10.0.0.2", 6, 1234, 80)
    gen = PktGen(sim, host, window_ns=MS)
    gen.add_flow(FlowSpec(flow=flow, rate_mbps=10_000.0, packet_size=64,
                          stop_ns=2 * WINDOW_NS))
    start = time.perf_counter()
    # One extra window past stop_ns so the pipeline drains and every
    # received packet is either transmitted or counted as a drop.
    sim.run(until=3 * WINDOW_NS)
    wall_s = time.perf_counter() - start
    stats = host.stats
    drops = (stats.dropped_ring_full + stats.dropped_no_vm
             + stats.dropped_no_rule + stats.lost_in_nf)
    return {
        "gbps": gen.rx_meter.mean_gbps(WINDOW_NS, 2 * WINDOW_NS),
        "p50_us": gen.latency.percentile_us(50),
        "p99_us": gen.latency.percentile_us(99),
        "events_per_pkt": sim.events_scheduled / stats.rx_packets,
        # Bare call_later timers (the rte_timer-style lane) — a subset of
        # events_per_pkt, showing how much kernel work bypasses Event
        # dispatch entirely.
        "timers_per_pkt": sim.timers_scheduled / stats.rx_packets,
        "wall_s": wall_s,
        "rx": stats.rx_packets,
        "tx": stats.tx_packets,
        "drops": drops,
        "vm_mean_batch": stats.batch_summary()["vm_mean_batch"],
    }


def test_ablation_burst_size(report, benchmark):
    results = benchmark.pedantic(
        lambda: {burst: measure(burst) for burst in BURSTS},
        iterations=1, rounds=1)

    base = results[1]
    tuned = results[32]

    for burst, r in results.items():
        # Packet conservation: everything received is transmitted or
        # accounted as a drop, at every burst size.
        assert r["rx"] == r["tx"] + r["drops"], burst
        # Batching is a simulator/host-efficiency knob, not a model
        # change: the achieved throughput must not move.
        assert r["gbps"] == pytest.approx(base["gbps"], rel=0.02), burst

    # The point of the refactor: one event moves a burst, so kernel
    # events per packet collapse (measured ~10.1 -> ~4.4 at 32).
    assert tuned["events_per_pkt"] < 0.6 * base["events_per_pkt"]
    assert tuned["wall_s"] < 0.9 * base["wall_s"]
    # The timer lane carries real work (pktgen pacing, NIC TX, VM
    # hand-offs) but is strictly a subset of the odometer.
    assert 0 < tuned["timers_per_pkt"] < tuned["events_per_pkt"]
    # Batches actually form under small-packet overload.
    assert tuned["vm_mean_batch"] > 8.0
    # Batching trades a bounded amount of queueing latency (descriptors
    # wait for their burst peers); keep it within the Table 2 band.
    assert tuned["p50_us"] - base["p50_us"] < 25.0
    assert tuned["p99_us"] - base["p99_us"] < 25.0

    columns = {
        "burst": BURSTS,
        "gbps": [results[b]["gbps"] for b in BURSTS],
        "p50_us": [results[b]["p50_us"] for b in BURSTS],
        "p99_us": [results[b]["p99_us"] for b in BURSTS],
        "events_per_pkt": [results[b]["events_per_pkt"] for b in BURSTS],
        "timers_per_pkt": [results[b]["timers_per_pkt"] for b in BURSTS],
        "wall_s": [results[b]["wall_s"] for b in BURSTS],
        "drops": [results[b]["drops"] for b in BURSTS]}
    report("ablation_burst_size", series_table(
        "Ablation — burst size (2-VM chain, 64 B at line rate)", columns),
        metrics=columns,
        config={"packet_size": 64, "offered_mbps": 10_000.0,
                "chain": ["noop0", "noop1"], "ring_slots": 1024,
                "window_ns": WINDOW_NS})
