"""Ablation: descriptor lookup caching (§4.2).

"Caching the flow table lookup result inside the packet descriptor ...
avoids the need for the NF Manager's TX thread to make hash table
lookups."  We measure hash lookups per packet and small-packet throughput
through a 3-NF chain with the cache on and off.
"""

import pytest

from repro.dataplane import NfvHost
from repro.metrics import series_table
from repro.net import FiveTuple
from repro.nfs import NoOpNf
from repro.sim import MS, Simulator
from repro.workloads import FlowSpec, PktGen

from tests.conftest import install_chain

CHAIN_LEN = 3
WINDOW_NS = 3 * MS


def measure(lookup_cache: bool):
    sim = Simulator()
    host = NfvHost(sim, name=f"cache-{lookup_cache}",
                   lookup_cache=lookup_cache)
    services = [f"s{i}" for i in range(CHAIN_LEN)]
    for service in services:
        host.add_nf(NoOpNf(service), ring_slots=2048)
    install_chain(host, services)
    flow = FiveTuple("10.0.0.1", "10.0.0.2", 6, 1, 80)
    gen = PktGen(sim, host, window_ns=MS)
    # Below saturation so every packet traverses the full chain (drops
    # mid-chain would under-count the per-hop lookups we're measuring).
    gen.add_flow(FlowSpec(flow=flow, rate_mbps=2_000.0, packet_size=64,
                          stop_ns=2 * WINDOW_NS))
    sim.run(until=2 * WINDOW_NS)
    gbps = gen.rx_meter.mean_gbps(WINDOW_NS, 2 * WINDOW_NS)
    lookups_per_packet = (host.flow_table.lookups
                          / max(1, host.stats.rx_packets))
    mean_us = gen.latency.mean_us()
    return gbps, lookups_per_packet, mean_us


def test_ablation_lookup_cache(report, benchmark):
    def run():
        return {enabled: measure(enabled) for enabled in (True, False)}

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    cached_gbps, cached_lookups, cached_lat = results[True]
    raw_gbps, raw_lookups, raw_lat = results[False]

    # Cache collapses per-packet hash lookups to ~0 (one per flow).
    assert cached_lookups < 0.01
    assert raw_lookups == pytest.approx(CHAIN_LEN + 1, rel=0.05)
    # Throughput with the cache is at least as good, latency no worse.
    assert cached_gbps >= raw_gbps - 0.1
    assert cached_lat <= raw_lat + 0.5

    columns = {"cache": ["on", "off"],
               "gbps": [cached_gbps, raw_gbps],
               "lookups_per_pkt": [cached_lookups, raw_lookups],
               "mean_rtt_us": [cached_lat, raw_lat]}
    report("ablation_lookup_cache", series_table(
        "Ablation — descriptor lookup cache (3-NF chain, 64 B)",
        columns), metrics=columns)
