"""Benchmark helpers: result reporting to stdout and benchmarks/results/.

Every benchmark regenerates one of the paper's tables or figures and
prints a paper-vs-measured comparison.  pytest captures stdout, so each
report is also written to ``benchmarks/results/<name>.txt`` — inspect
those files (or run with ``-s``) to see the series.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report():
    """report(name, text): print and persist a benchmark's output."""
    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _report
