"""Benchmark helpers: result reporting to stdout and benchmarks/results/.

Every benchmark regenerates one of the paper's tables or figures and
prints a paper-vs-measured comparison.  pytest captures stdout, so each
report is also written to ``benchmarks/results/<name>.txt`` — inspect
those files (or run with ``-s``) to see the series.  When the benchmark
passes its numbers via ``metrics=``, a machine-readable
``benchmarks/results/<name>.json`` is written next to the text report so
dashboards and regression tooling never have to parse the tables.
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report():
    """report(name, text, metrics=None, config=None): print and persist.

    ``text`` goes to stdout and ``results/<name>.txt``.  ``metrics`` (a
    JSON-serialisable mapping, typically the same columns/rows the table
    was rendered from) and ``config`` (workload knobs: rates, sizes,
    burst_size, ...) are written to ``results/<name>.json``.
    """
    def _report(name: str, text: str, metrics=None, config=None) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        payload = {"name": name,
                   "config": config or {},
                   "metrics": metrics or {}}
        json_path = RESULTS_DIR / f"{name}.json"
        json_path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                             + "\n")
        print(f"\n{text}\n[saved to {path} and {json_path}]")

    return _report
