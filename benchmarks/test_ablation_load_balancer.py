"""Ablation: load-balancing policy across NF replicas (§4.2).

"using round robin load balancing of packets to NFs can lead to
unbalanced queue sizes, potentially leading to packet drops or variable
latency" — so the NF Manager offers queue-length-based balancing (and
flow-hashing for stateful NFs).

Workload: many flows through a service with two replicas whose per-packet
cost varies heavily (payload-dependent processing).  Metrics: drops and
p99 latency per policy.
"""


from repro.dataplane import NfvHost
from repro.dataplane.load_balancer import LoadBalancePolicy
from repro.metrics import series_table
from repro.net import FiveTuple
from repro.nfs import ComputeNf
from repro.sim import MS, Simulator
from repro.workloads import FlowSpec, PktGen

from tests.conftest import install_chain

POLICIES = [LoadBalancePolicy.ROUND_ROBIN,
            LoadBalancePolicy.LEAST_QUEUE,
            LoadBalancePolicy.FLOW_HASH]


def measure(policy: LoadBalancePolicy):
    sim = Simulator()
    host = NfvHost(sim, name=str(policy.value), load_balance=policy)
    # Two replicas with very different speeds: a good balancer should
    # steer work away from the slow one.
    host.add_nf(ComputeNf("svc", cost_ns=9_000, jitter_ns=4_000),
                ring_slots=64)
    host.add_nf(ComputeNf("svc", cost_ns=700, jitter_ns=300),
                ring_slots=64)
    install_chain(host, ["svc"])
    gen = PktGen(sim, host, window_ns=MS)
    for i in range(16):
        flow = FiveTuple("10.0.0.1", "10.0.0.2", 6, 1000 + i, 80)
        gen.add_flow(FlowSpec(flow=flow, rate_mbps=40.0, packet_size=128,
                              pacing="poisson", stop_ns=30 * MS))
    sim.run(until=60 * MS)
    drops = host.stats.dropped_ring_full
    p99 = gen.latency.percentile_us(99)
    return drops, p99, gen.received


def test_ablation_load_balancer(report, benchmark):
    results = benchmark.pedantic(
        lambda: {policy: measure(policy) for policy in POLICIES},
        iterations=1, rounds=1)

    rr_drops, rr_p99, _ = results[LoadBalancePolicy.ROUND_ROBIN]
    lq_drops, lq_p99, lq_received = results[LoadBalancePolicy.LEAST_QUEUE]

    # Queue-length balancing strictly improves on blind round robin when
    # per-packet costs vary (fewer drops and/or lower tail latency).
    assert (lq_drops, lq_p99) < (rr_drops, rr_p99)
    assert lq_received > 0

    columns = {
        "policy": [policy.value for policy in POLICIES],
        "drops": [results[policy][0] for policy in POLICIES],
        "p99_us": [results[policy][1] for policy in POLICIES],
        "delivered": [results[policy][2] for policy in POLICIES]}
    report("ablation_load_balancer", series_table(
        "Ablation — load-balancing policy (2 uneven replicas, 16 flows)",
        columns), metrics=columns)
