"""Ablation: parallel verdict conflict resolution (§4.2).

"The NF Manager's TX thread resolves conflicting action requests by
either prioritizing actions (e.g., drop is most important, followed by
transmit out, etc), or by having priorities associated with each VM."

Scenario: a permissive monitor runs in parallel with a strict filter that
discards a fraction of packets.  Under action-priority the filter's drops
always win; under VM-priority the outcome follows the configured ranking,
so putting the monitor first *overrides* the filter — the operator's
knob for "observe but don't enforce" deployments.
"""


from repro.dataplane import FlowTableEntry, NfvHost, ToPort, ToService, Verdict
from repro.metrics import series_table
from repro.net import FiveTuple, FlowMatch, Packet
from repro.nfs.base import NetworkFunction
from repro.sim import MS, Simulator


class EveryOtherDropper(NetworkFunction):
    read_only = True

    def process(self, packet, ctx):
        if self.packets_seen % 2 == 1:
            return Verdict.discard()
        return Verdict.default()


class PassiveMonitor(NetworkFunction):
    read_only = True

    def process(self, packet, ctx):
        return Verdict.default()


def run_case(policy: str, monitor_priority: int, filter_priority: int):
    sim = Simulator()
    host = NfvHost(sim, name=f"cp-{policy}-{monitor_priority}",
                   conflict_policy=policy)
    host.add_nf(PassiveMonitor("monitor"), priority=monitor_priority)
    host.add_nf(EveryOtherDropper("filter"), priority=filter_priority)
    host.install_rule(FlowTableEntry(
        scope="eth0", match=FlowMatch.any(),
        actions=(ToService("monitor"), ToService("filter")),
        parallel=True))
    host.install_rule(FlowTableEntry(
        scope="filter", match=FlowMatch.any(),
        actions=(ToPort("eth1"),)))
    flow = FiveTuple("10.0.0.1", "10.0.0.2", 6, 1, 80)
    delivered = []
    host.port("eth1").on_egress = delivered.append
    for _ in range(100):
        host.inject("eth0", Packet(flow=flow, size=128))
    sim.run(until=50 * MS)
    return len(delivered)


def test_ablation_conflict_policy(report, benchmark):
    def run():
        return {
            "action_priority": run_case("action_priority", 0, 1),
            "vm_priority (filter ranked)": run_case("vm_priority", 1, 0),
            "vm_priority (monitor ranked)": run_case("vm_priority", 0, 1),
        }

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    # Action priority: the filter's drop always wins -> half delivered.
    assert results["action_priority"] == 50
    # VM priority with the filter ranked highest: same enforcement.
    assert results["vm_priority (filter ranked)"] == 50
    # VM priority with the monitor ranked highest: observe-only, no drops.
    assert results["vm_priority (monitor ranked)"] == 100

    columns = {"policy": list(results),
               "delivered": list(results.values())}
    report("ablation_conflict_policy", series_table(
        "Ablation — parallel conflict policy (100 packets, 50% filter)",
        columns), metrics=columns)
