"""Micro-benchmark: the sharded kernel on a multi-host chain.

A 4-host Rocketfuel-style line (per-hop propagation delay ≫ the
per-packet service time, the regime where conservative windowing pays)
runs the same 4-service chain at shards ∈ {1, 2, 4}.  Two gates:

- **Correctness (always):** every shard count moves *exactly* the same
  packets — identical network-wide rx/tx/drop/conservation totals.
- **Speed (multi-core machines only):** with one worker process per
  shard, ``shards=4`` must beat the single-shard wall clock by ≥1.5×.
  On boxes with fewer than 4 CPUs the parallel run cannot win (the
  workers time-slice one core and pay the pipe tax on top), so the
  speedup assertion is skipped and the numbers are recorded instead.

The JSON artifact (``results/micro_multihost.json``) records wall-clock
and events/packet per shard count for regression tooling.
"""

import os
import time

from repro.core import EXIT, ServiceGraph
from repro.net import FiveTuple
from repro.sim import MS, US
from repro.sim.sharded import Scenario, ShardedSimulator, TrafficSpec
from repro.topology import Link, NodeSpec, Topology

HOSTS = 4
DURATION = 20 * MS
LINK_DELAY = 500 * US
MIN_SPEEDUP = 1.5
SHARD_COUNTS = (1, 2, 4)


def make_scenario() -> Scenario:
    topology = Topology()
    for index in range(HOSTS):
        topology.add_node(NodeSpec(name=f"h{index}", cores=4))
    for index in range(HOSTS - 1):
        topology.add_link(Link(a=f"h{index}", b=f"h{index + 1}",
                               delay_ns=LINK_DELAY))
    graph = ServiceGraph("chain")
    services = ("a", "b", "c", "d")
    for service in services:
        graph.add_service(service, read_only=True)
    for src, dst in zip(services, services[1:]):
        graph.add_edge(src, dst, default=True)
    graph.add_edge(services[-1], EXIT, default=True)
    graph.set_entry(services[0])
    return Scenario(
        topology=topology, graph=graph,
        placement={"a": "h0", "b": "h1", "c": "h2", "d": "h3"},
        duration_ns=DURATION,
        traffic=[
            TrafficSpec(host="h0",
                        flow=FiveTuple("10.0.0.1", "10.0.0.2", 6, 1, 80),
                        rate_mbps=2000.0, stop_ns=12 * MS),
            TrafficSpec(host="h0",
                        flow=FiveTuple("10.0.0.3", "10.0.0.4", 17, 2, 53),
                        rate_mbps=1200.0, start_ns=2 * MS,
                        stop_ns=10 * MS),
        ],
    )


def run_once(shards: int) -> dict:
    workers = 0 if shards == 1 else shards
    started = time.perf_counter()
    result = ShardedSimulator(make_scenario(), shards=shards,
                              workers=workers).run()
    wall_s = time.perf_counter() - started
    events = sum(r["events_scheduled"] for r in result.shard_results)
    packets = result.totals()["rx_packets"]
    return {
        "shards": shards,
        "workers": workers,
        "wall_s": wall_s,
        "events_scheduled": events,
        "events_per_packet": events / packets if packets else 0.0,
        "totals": result.totals(),
    }


def test_sharded_multihost_scaling(report):
    runs = {shards: run_once(shards) for shards in SHARD_COUNTS}

    # Correctness gate: shard count never changes what the network did.
    reference = runs[1]["totals"]
    for shards in SHARD_COUNTS[1:]:
        assert runs[shards]["totals"] == reference, shards
    assert reference["rx_packets"] > 10_000  # the workload is real

    speedup = runs[1]["wall_s"] / runs[4]["wall_s"]
    parallel_capable = (os.cpu_count() or 1) >= 4

    lines = [
        "sharded multi-host chain "
        f"({HOSTS} hosts, {DURATION // MS} ms, 64 B)",
        f"{'shards':>6} {'workers':>7} {'wall_s':>8} {'events/pkt':>10}",
    ]
    for shards in SHARD_COUNTS:
        run = runs[shards]
        lines.append(f"{shards:>6} {run['workers']:>7} "
                     f"{run['wall_s']:>8.3f} "
                     f"{run['events_per_packet']:>10.2f}")
    lines.append(f"speedup shards=4 vs shards=1: {speedup:.2f}x "
                 f"(cpus={os.cpu_count()}, "
                 f"gate {'on' if parallel_capable else 'off'})")
    report("micro_multihost", "\n".join(lines),
           metrics={str(shards): {key: run[key] for key in
                                  ("workers", "wall_s",
                                   "events_scheduled",
                                   "events_per_packet", "totals")}
                    for shards, run in runs.items()},
           config={"hosts": HOSTS, "duration_ns": DURATION,
                   "link_delay_ns": LINK_DELAY,
                   "shard_counts": list(SHARD_COUNTS),
                   "cpu_count": os.cpu_count(),
                   "min_speedup": MIN_SPEEDUP,
                   "speedup_gate_active": parallel_capable})

    if parallel_capable:
        assert speedup >= MIN_SPEEDUP, (
            f"shards=4 only {speedup:.2f}x faster than shards=1 "
            f"(need {MIN_SPEEDUP}x)")
