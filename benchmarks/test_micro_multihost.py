"""Micro-benchmark: the sharded kernel on the 22-node Rocketfuel WAN.

The paper's placement evaluation runs on Rocketfuel AS-16631 (22 nodes,
64 edges); this benchmark runs the sharded kernel on that same topology
(`repro.topology.rocketfuel.rocketfuel_like`) with a 6-service chain
spread across the node order — so at every shard count the chain, and
its transit hops, cross simulation-shard boundaries.  Two gates:

- **Correctness (always):** every shard count moves *exactly* the same
  packets — identical network-wide rx/tx/drop/conservation totals.
- **Speed (multi-core machines only):** with one worker process per
  shard, ``shards=4`` must beat the single-shard wall clock by ≥1.5×.
  On boxes with fewer than 4 CPUs the parallel run cannot win (the
  workers time-slice one core and pay the pipe tax on top), so the
  speedup assertion is skipped and the numbers are recorded instead.

The JSON artifact (``results/micro_multihost.json``) records wall-clock
and events/packet per shard count for regression tooling, and a
committed baseline (``results/micro_multihost_baseline.json``) pins the
deterministic totals across machines — the wall-clock ratio against the
baseline is reported but never gates (absolute time is
machine-dependent).
"""

import json
import os
import pathlib
import time

from repro.core import EXIT, ServiceGraph
from repro.net import FiveTuple
from repro.sim import MS, US
from repro.sim.sharded import Scenario, ShardedSimulator, TrafficSpec
from repro.topology.rocketfuel import (
    AS16631_EDGES,
    AS16631_NODES,
    rocketfuel_like,
)

DURATION = 20 * MS
LINK_DELAY = 500 * US
MIN_SPEEDUP = 1.5
SHARD_COUNTS = (1, 2, 4)

BASELINE_PATH = (pathlib.Path(__file__).parent / "results"
                 / "micro_multihost_baseline.json")

#: Six services spread across the node order: contiguous shard plans
#: put every group of ~5 hosts in play at shards=4.
SERVICES = ("a", "b", "c", "d", "e", "f")
PLACEMENT = {"a": "n0", "b": "n4", "c": "n8",
             "d": "n12", "e": "n16", "f": "n20"}


def make_scenario() -> Scenario:
    topology = rocketfuel_like(nodes=AS16631_NODES, edges=AS16631_EDGES,
                               cores_per_node=4,
                               link_delay_ns=LINK_DELAY)
    graph = ServiceGraph("wan-chain")
    for service in SERVICES:
        graph.add_service(service, read_only=True)
    for src, dst in zip(SERVICES, SERVICES[1:]):
        graph.add_edge(src, dst, default=True)
    graph.add_edge(SERVICES[-1], EXIT, default=True)
    graph.set_entry(SERVICES[0])
    return Scenario(
        topology=topology, graph=graph,
        placement=dict(PLACEMENT),
        duration_ns=DURATION,
        traffic=[
            TrafficSpec(host="n0",
                        flow=FiveTuple("10.0.0.1", "10.0.0.2", 6, 1, 80),
                        rate_mbps=2000.0, stop_ns=12 * MS),
            TrafficSpec(host="n0",
                        flow=FiveTuple("10.0.0.3", "10.0.0.4", 17, 2, 53),
                        rate_mbps=1200.0, start_ns=2 * MS,
                        stop_ns=10 * MS),
        ],
    )


def run_once(shards: int) -> dict:
    workers = 0 if shards == 1 else shards
    started = time.perf_counter()
    result = ShardedSimulator(make_scenario(), shards=shards,
                              workers=workers).run()
    wall_s = time.perf_counter() - started
    events = sum(r["events_scheduled"] for r in result.shard_results)
    packets = result.totals()["rx_packets"]
    return {
        "shards": shards,
        "workers": workers,
        "wall_s": wall_s,
        "events_scheduled": events,
        "events_per_packet": events / packets if packets else 0.0,
        "totals": result.totals(),
    }


def test_sharded_multihost_scaling(report):
    runs = {shards: run_once(shards) for shards in SHARD_COUNTS}

    # Correctness gate: shard count never changes what the network did.
    reference = runs[1]["totals"]
    for shards in SHARD_COUNTS[1:]:
        assert runs[shards]["totals"] == reference, shards
    assert reference["rx_packets"] > 10_000  # the workload is real

    # Cross-machine anchor: the committed baseline must see the exact
    # same deterministic workload (totals and event count); its
    # wall-clock ratio is reported but never gates.
    baseline = json.loads(BASELINE_PATH.read_text())
    assert reference == baseline["totals"]
    assert runs[1]["events_scheduled"] == baseline["events_scheduled"]
    baseline_ratio = baseline["wall_s"] / runs[1]["wall_s"]

    speedup = runs[1]["wall_s"] / runs[4]["wall_s"]
    parallel_capable = (os.cpu_count() or 1) >= 4

    lines = [
        "sharded Rocketfuel WAN chain "
        f"({AS16631_NODES} nodes, {AS16631_EDGES} edges, "
        f"{DURATION // MS} ms, 64 B)",
        f"{'shards':>6} {'workers':>7} {'wall_s':>8} {'events/pkt':>10}",
    ]
    for shards in SHARD_COUNTS:
        run = runs[shards]
        lines.append(f"{shards:>6} {run['workers']:>7} "
                     f"{run['wall_s']:>8.3f} "
                     f"{run['events_per_packet']:>10.2f}")
    lines.append(f"speedup shards=4 vs shards=1: {speedup:.2f}x "
                 f"(cpus={os.cpu_count()}, "
                 f"gate {'on' if parallel_capable else 'off'})")
    lines.append(f"shards=1 vs committed baseline: "
                 f"{baseline_ratio:.2f}x (non-gating)")
    metrics = {str(shards): {key: run[key] for key in
                             ("workers", "wall_s",
                              "events_scheduled",
                              "events_per_packet", "totals")}
               for shards, run in runs.items()}
    metrics["baseline_ratio"] = baseline_ratio
    report("micro_multihost", "\n".join(lines),
           metrics=metrics,
           config={"nodes": AS16631_NODES, "edges": AS16631_EDGES,
                   "duration_ns": DURATION,
                   "link_delay_ns": LINK_DELAY,
                   "placement": dict(PLACEMENT),
                   "shard_counts": list(SHARD_COUNTS),
                   "cpu_count": os.cpu_count(),
                   "min_speedup": MIN_SPEEDUP,
                   "speedup_gate_active": parallel_capable})

    if parallel_capable:
        assert speedup >= MIN_SPEEDUP, (
            f"shards=4 only {speedup:.2f}x faster than shards=1 "
            f"(need {MIN_SPEEDUP}x)")
