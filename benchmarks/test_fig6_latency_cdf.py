"""Figure 6: latency CDF with compute-intensive NFs.

Paper: "we measure the latency when each VM performs an intensive
computation on each packet ... parallelism can reduce the latency caused
by long chains that include expensive VM processing."

Each NF burns ~30 µs per packet; sequential chains pay it per hop,
parallel chains pay it once (plus small fan-out/merge costs).
"""


from repro.dataplane import NfvHost
from repro.metrics import series_table
from repro.net import FiveTuple
from repro.nfs import ComputeNf
from repro.sim import MS, Simulator
from repro.workloads import FlowSpec, PktGen

from tests.conftest import install_chain

COMPUTE_NS = 30_000
JITTER_NS = 8_000
CONFIGS = ["1VM", "2VM (parallel)", "3VM (parallel)",
           "2VM (sequential)", "3VM (sequential)"]


def measure(config: str):
    sim = Simulator()
    vms = int(config[0])
    parallel = "parallel" in config
    host = NfvHost(sim, name=config)
    services = [f"c{i}" for i in range(vms)]
    for service in services:
        host.add_nf(ComputeNf(service, cost_ns=COMPUTE_NS,
                              jitter_ns=JITTER_NS))
    install_chain(host, services)
    if parallel and vms > 1:
        host.manager.register_parallel_chain(services)
    flow = FiveTuple("10.0.0.1", "10.0.0.2", 6, 1234, 80)
    gen = PktGen(sim, host)
    gen.add_flow(FlowSpec(flow=flow, rate_mbps=100.0, packet_size=1000,
                          stop_ns=80 * MS))
    sim.run(until=150 * MS)
    assert gen.received > 500
    return gen.latency


def test_fig6_latency_cdf(report, benchmark):
    recorders = benchmark.pedantic(
        lambda: {config: measure(config) for config in CONFIGS},
        iterations=1, rounds=1)

    means = {config: recorder.mean_us()
             for config, recorder in recorders.items()}
    # Parallel chains hide the extra VMs' compute almost entirely.
    assert means["2VM (parallel)"] < means["1VM"] + 15.0
    assert means["3VM (parallel)"] < means["1VM"] + 20.0
    # Sequential chains pay ~30 µs per extra hop.
    assert means["2VM (sequential)"] - means["1VM"] > 20.0
    assert means["3VM (sequential)"] - means["2VM (sequential)"] > 20.0
    # And the paper's headline: parallel strictly beats sequential.
    assert means["2VM (parallel)"] < means["2VM (sequential)"] - 15.0
    assert means["3VM (parallel)"] < means["3VM (sequential)"] - 40.0

    # CDF table at deciles (the Fig. 6 curves).
    percentiles = [10, 25, 50, 75, 90, 99]
    columns = {"percentile": percentiles}
    for config in CONFIGS:
        columns[config.replace(" ", "_")] = [
            recorders[config].percentile_us(p) for p in percentiles]
    report("fig6_latency_cdf", series_table(
        "Fig. 6 — RTT percentiles (us), 30 us/packet compute NFs",
        columns), metrics=columns)
