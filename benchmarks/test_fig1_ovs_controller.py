"""Figure 1: OVS throughput collapse as packets punt to the controller.

Paper: "the maximum throughput that can be achieved quickly drops when
the proportion of packets that must contact the controller increases",
for 256 B and 1000 B packets against a single-threaded POX controller.

Regenerated two ways: the closed-form capacity model sweeps the full
0–25 % range; a discrete-event OVS validates two points of the curve.
"""

import pytest

from repro.baselines import OvsControllerModel, OvsSwitchSim
from repro.control import SdnController
from repro.metrics import series_table
from repro.net import FiveTuple, Packet
from repro.sim import MS, US, Simulator

PUNT_PERCENTS = [0, 1, 2, 5, 10, 15, 20, 25]


def run_fig1_sweep():
    model = OvsControllerModel(line_rate_gbps=10.0,
                               fast_path_pps=3.3e6,
                               controller_rps=10_000)
    curve_1000 = model.sweep(PUNT_PERCENTS, packet_size=1000)
    curve_256 = model.sweep(PUNT_PERCENTS, packet_size=256)
    return curve_1000, curve_256


def simulate_loss(punt_pct: float, packet_size: int,
                  offered_pps: float) -> float:
    """Offer a fixed rate through the DES OVS; return the loss fraction.

    Fig. 1 plots *max* throughput — the highest offered rate the system
    sustains without loss — so the validation checks where loss begins.
    """
    sim = Simulator()
    controller = SdnController(sim, service_time_ns=100 * US,
                               propagation_ns=50 * US)
    switch = OvsSwitchSim(sim, controller,
                          punt_fraction=punt_pct / 100.0,
                          fast_path_pps=3.3e6)
    flow = FiveTuple("10.0.0.1", "10.0.0.2", 6, 1, 2)
    offered = 0

    def offer():
        nonlocal offered
        gap = max(1, round(1e9 / offered_pps))
        pool = switch.packet_pool
        while sim.now < 200 * MS:
            if pool is not None:
                packet = pool.alloc(flow=flow, size=packet_size)
            else:
                packet = Packet(flow=flow, size=packet_size)
            switch.offer(packet)
            offered += 1
            yield sim.timeout(gap)

    sim.process(offer())
    sim.run(until=600 * MS)
    # Only punted packets can be lost (the controller path is the
    # bottleneck under test), so measure loss among punts.
    total_punts = switch.dropped_punts + switch.punts_completed
    return switch.dropped_punts / max(1, total_punts)


def test_fig1_throughput_vs_punt_fraction(report, benchmark):
    curve_1000, curve_256 = benchmark.pedantic(
        run_fig1_sweep, iterations=1, rounds=1)

    values_1000 = [gbps for _p, gbps in curve_1000]
    values_256 = [gbps for _p, gbps in curve_256]

    # Paper shape: ~line rate at 0 %, collapsed by a few percent, the
    # 256 B curve strictly below the 1000 B curve once punting starts.
    assert values_1000[0] == pytest.approx(10.0, rel=0.05)
    assert values_1000[PUNT_PERCENTS.index(5)] < 2.0
    assert values_256[PUNT_PERCENTS.index(25)] < 0.2
    for v1000, v256, pct in zip(values_1000, values_256, PUNT_PERCENTS):
        if pct > 0:
            assert v256 < v1000

    columns = {"pct_to_controller": PUNT_PERCENTS,
               "1000B_packets": values_1000,
               "256B_packets": values_256}
    report("fig1_ovs_controller", series_table(
        "Fig. 1 — OVS max throughput (Gbps) vs % packets to controller",
        columns), metrics=columns)


def test_fig1_des_validates_model(report, benchmark):
    """Loss starts right where the capacity model says it should."""
    model = OvsControllerModel(fast_path_pps=3.3e6,
                               controller_rps=10_000)

    def run():
        rows = []
        for pct in (1.0, 10.0):
            # Model's max-throughput point in packets/second.
            capacity_pps = 10_000 / (pct / 100.0)
            below = simulate_loss(pct, 256, offered_pps=0.8 * capacity_pps)
            above = simulate_loss(pct, 256, offered_pps=2.0 * capacity_pps)
            rows.append((pct, capacity_pps, below, above))
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    for _pct, _capacity, below, above in rows:
        assert below < 0.02   # sustainable under the predicted maximum
        assert above > 0.10   # lossy above it
    columns = {"pct": [row[0] for row in rows],
               "capacity_pps": [row[1] for row in rows],
               "loss_at_0.8x": [row[2] for row in rows],
               "loss_at_2.0x": [row[3] for row in rows]}
    report("fig1_des_validation", series_table(
        "Fig. 1 cross-check — loss fraction around the model's capacity",
        columns), metrics=columns)
