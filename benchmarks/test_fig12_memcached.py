"""Figure 12: memcached RTT vs request rate — SDNFV proxy vs TwemProxy.

Paper: "TwemProxy quickly becomes overloaded when the rate is increased
to only 90,000 req/sec.  On the other hand, SDNFV can support 9,200,000
req/sec even with just one core, which is 102 times faster."

TwemProxy runs as the kernel-path queueing model (validated against its
closed form); the SDNFV proxy is the actual MemcachedProxy NF in the
simulated data plane.  Responses bypass the proxy in both setups; the
server-side round trip (90 µs) is added identically to both.
"""

import pytest

from repro.baselines import TwemproxyModel
from repro.baselines.twemproxy import TwemproxySim
from repro.dataplane import NfvHost
from repro.metrics import series_table
from repro.nfs import MemcachedProxy
from repro.sim import MS, Simulator
from repro.workloads import MemcachedWorkload

from tests.conftest import install_chain

SERVERS = [("10.8.0.10", 11211), ("10.8.0.11", 11211),
           ("10.8.0.12", 11211)]
TWEM_RATES = [10_000, 50_000, 80_000, 95_000]
SDNFV_RATES = [10_000, 100_000, 1_000_000, 4_000_000, 7_000_000]


def measure_twemproxy(rate: float) -> float:
    sim = Simulator()
    proxy = TwemproxySim(sim, queue_depth=4096)
    sim.process(proxy.drive(rate_rps=rate, duration_ns=80 * MS))
    sim.run(until=200 * MS)
    return proxy.latency.mean_us()


def measure_sdnfv(rate: float) -> float:
    sim = Simulator()
    host = NfvHost(sim, name="mc0")
    # Parse+hash folded into the base VM handling cost, as in the real
    # system where the NF's per-packet work is tens of nanoseconds.
    host.add_nf(MemcachedProxy("mc", servers=SERVERS, parse_cost_ns=0),
                ring_slots=8192)
    install_chain(host, ["mc"])
    workload = MemcachedWorkload(sim, host, requests_per_second=rate,
                                 clients=64)
    sim.run(until=30 * MS)
    return workload.latency.mean_us()


def test_fig12_memcached_rtt_vs_rate(report, benchmark):
    def run():
        twem = [measure_twemproxy(rate) for rate in TWEM_RATES]
        sdnfv = [measure_sdnfv(rate) for rate in SDNFV_RATES]
        return twem, sdnfv

    twem, sdnfv = benchmark.pedantic(run, iterations=1, rounds=1)

    # TwemProxy's RTT blows up approaching/crossing 90 k req/s.
    assert twem[0] < 120
    assert twem[-1] > 5 * twem[0]
    # And the curve is monotonically worsening, as in the paper.
    assert twem == sorted(twem)
    model = TwemproxyModel()
    assert model.capacity_rps == pytest.approx(90_000, rel=0.1)

    # The SDNFV proxy holds ~100 µs RTT far beyond TwemProxy's ceiling.
    for rate, rtt in zip(SDNFV_RATES, sdnfv):
        assert rtt < 150, f"SDNFV overloaded at {rate}"
    sdnfv_capacity = SDNFV_RATES[-1]
    ratio = sdnfv_capacity / model.capacity_rps
    # Paper: 102x; the simulated one-core proxy sustains >= ~75x.
    assert ratio > 70

    rows = []
    for rate, rtt in zip(TWEM_RATES, twem):
        rows.append((rate, "TwemProxy", rtt))
    for rate, rtt in zip(SDNFV_RATES, sdnfv):
        rows.append((rate, "SDNFV", rtt))
    columns = {"req_per_s": [row[0] for row in rows],
               "system": [row[1] for row in rows],
               "rtt_us": [row[2] for row in rows]}
    report("fig12_memcached", series_table(
        f"Fig. 12 — memcached mean RTT (us) vs request rate "
        f"(SDNFV sustains {ratio:.0f}x TwemProxy's ceiling; paper: 102x)",
        columns), metrics=columns)
