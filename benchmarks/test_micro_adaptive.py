"""Micro-benchmark: adaptive per-pair lookahead + columnar transport.

The worst case for a global-minimum lookahead is one fast link in an
otherwise slow topology: a 12-host WAN chain whose crossing links are
all 5 ms except a single 50 us intra-DC hop in the middle.  At
``shards=12`` the uniform schedule barriers *every* shard every 50 us;
the adaptive schedule confines the microsecond cadence to the two
shards actually coupled by the fast link and advances the other ten in
5 ms WAN strides.  Three gates:

- **Correctness (always):** uniform/adaptive and pickle/columnar runs
  all report identical network totals, equal to the monolithic
  ``shards=1`` run.
- **Window reduction (always, deterministic):** the adaptive schedule
  advances >= 5x fewer shard-windows than the uniform one.
- **Transport (always, deterministic):** at the same schedule, the
  columnar codec ships >= 10x fewer pipe messages per window than
  per-event pickling.
- **Wall clock (multi-core machines only):** adaptive beats uniform by
  >= 1.3x with worker processes; on boxes with fewer than 4 CPUs the
  ratio is recorded but not gated (same pattern as the other
  benchmarks).

The JSON artifact (``results/micro_adaptive.json``) records window
counts, transport counters, and wall-clock per variant.
"""

import os
import time

from repro.core import EXIT, ServiceGraph
from repro.net import FiveTuple
from repro.sim import MS, US
from repro.sim.sharded import Scenario, ShardedSimulator, TrafficSpec
from repro.topology import Link, NodeSpec, Topology

HOSTS = 12
FAST_DELAY = 50 * US    # the lone intra-DC hop (h5 - h6)
SLOW_DELAY = 5 * MS     # every WAN hop
DURATION = 20 * MS
RATE_MBPS = 1000.0
STOP_NS = 16 * MS
WORKERS = 4

MIN_WINDOW_REDUCTION = 5.0
MIN_MESSAGE_REDUCTION = 10.0
MIN_SPEEDUP = 1.3


def make_scenario() -> Scenario:
    topology = Topology()
    for i in range(HOSTS):
        topology.add_node(NodeSpec(name=f"h{i}", cores=4))
    for i in range(HOSTS - 1):
        delay = FAST_DELAY if i == 5 else SLOW_DELAY
        topology.add_link(Link(a=f"h{i}", b=f"h{i + 1}", delay_ns=delay))
    graph = ServiceGraph("dc-edge")
    for service in ("a", "b", "c"):
        graph.add_service(service, read_only=True)
    graph.add_edge("a", "b", default=True)
    graph.add_edge("b", "c", default=True)
    graph.add_edge("c", EXIT, default=True)
    graph.set_entry("a")
    # The chain straddles the fast hop: a->b rides a WAN link, b->c the
    # 50 us link, so boundary traffic crosses both delay classes.
    return Scenario(
        topology=topology, graph=graph,
        placement={"a": "h4", "b": "h5", "c": "h6"},
        duration_ns=DURATION,
        traffic=[TrafficSpec(
            host="h4",
            flow=FiveTuple("10.0.0.1", "10.0.0.2", 6, 1, 80),
            rate_mbps=RATE_MBPS, packet_size=64, stop_ns=STOP_NS)],
    )


def run_once(shards: int, workers: int, adaptive: bool,
             transport: str) -> dict:
    started = time.perf_counter()
    result = ShardedSimulator(make_scenario(), shards=shards,
                              workers=workers,
                              adaptive_windows=adaptive,
                              transport=transport).run()
    wall_s = time.perf_counter() - started
    summary = result.transport_summary()
    return {
        "shards": shards,
        "workers": workers,
        "adaptive": adaptive,
        "transport": transport,
        "wall_s": wall_s,
        "windows": summary["windows"] if summary else None,
        "batches": summary["batches"] if summary else None,
        "messages": summary["messages"] if summary else None,
        "bytes": summary["bytes"] if summary else None,
        "totals": result.totals(),
    }


def test_adaptive_schedule_and_columnar_transport(report):
    mono = run_once(1, 0, True, "columnar")
    uniform = run_once(HOSTS, WORKERS, False, "columnar")
    adaptive = run_once(HOSTS, WORKERS, True, "columnar")
    pickled = run_once(HOSTS, WORKERS, True, "pickle")

    # Correctness: the schedule and the wire encoding are performance
    # knobs, not model changes.
    for run in (uniform, adaptive, pickled):
        assert run["totals"] == mono["totals"], run["transport"]
    assert mono["totals"]["received"] > 10_000  # the workload is real

    # Deterministic gate 1: the adaptive schedule confines the 50 us
    # cadence to the two fast-coupled shards.
    window_reduction = uniform["windows"] / adaptive["windows"]
    assert window_reduction >= MIN_WINDOW_REDUCTION, (
        f"adaptive advanced {adaptive['windows']} windows vs uniform "
        f"{uniform['windows']} — only {window_reduction:.2f}x fewer "
        f"(need {MIN_WINDOW_REDUCTION}x)")

    # Deterministic gate 2: same schedule, same batches — the columnar
    # codec collapses per-event pickles into a few buffers per window.
    assert pickled["batches"] == adaptive["batches"]
    message_reduction = pickled["messages"] / adaptive["messages"]
    assert message_reduction >= MIN_MESSAGE_REDUCTION, (
        f"columnar ships {adaptive['messages']} messages vs pickle "
        f"{pickled['messages']} — only {message_reduction:.2f}x fewer "
        f"(need {MIN_MESSAGE_REDUCTION}x)")

    speedup = uniform["wall_s"] / adaptive["wall_s"]
    parallel_capable = (os.cpu_count() or 1) >= 4

    lines = [
        f"adaptive lookahead on a {HOSTS}-host WAN chain "
        f"(one {FAST_DELAY // US} us hop among {SLOW_DELAY // MS} ms "
        f"links, shards={HOSTS}, workers={WORKERS})",
        f"{'variant':>18} {'wall_s':>8} {'windows':>8} {'batches':>8} "
        f"{'messages':>9}",
    ]
    for name, run in (("uniform/columnar", uniform),
                      ("adaptive/columnar", adaptive),
                      ("adaptive/pickle", pickled)):
        lines.append(f"{name:>18} {run['wall_s']:>8.3f} "
                     f"{run['windows']:>8} {run['batches']:>8} "
                     f"{run['messages']:>9}")
    lines.append(f"window reduction {window_reduction:.2f}x, "
                 f"message reduction {message_reduction:.2f}x, "
                 f"wall speedup {speedup:.2f}x "
                 f"(cpus={os.cpu_count()}, "
                 f"gate {'on' if parallel_capable else 'off'})")
    report("micro_adaptive", "\n".join(lines),
           metrics={"mono": mono, "uniform": uniform,
                    "adaptive": adaptive, "pickle": pickled,
                    "window_reduction": window_reduction,
                    "message_reduction": message_reduction,
                    "speedup": speedup},
           config={"hosts": HOSTS, "fast_delay_ns": FAST_DELAY,
                   "slow_delay_ns": SLOW_DELAY,
                   "duration_ns": DURATION, "rate_mbps": RATE_MBPS,
                   "stop_ns": STOP_NS, "workers": WORKERS,
                   "cpu_count": os.cpu_count(),
                   "min_window_reduction": MIN_WINDOW_REDUCTION,
                   "min_message_reduction": MIN_MESSAGE_REDUCTION,
                   "min_speedup": MIN_SPEEDUP,
                   "speedup_gate_active": parallel_capable})

    if parallel_capable:
        assert speedup >= MIN_SPEEDUP, (
            f"adaptive only {speedup:.2f}x faster than uniform "
            f"(need {MIN_SPEEDUP}x)")
