"""Figure 11: SDNFV reacts to a policy change on all flows; SDN only on
new flows.

Paper (360 s, 400 video flows, 40 s mean lifetime, transcoder halves each
flow's rate, throttling from 60 s to 240 s): SDNFV's policy engine issues
RequestMe on the change and immediately retargets every live flow; the
SDN controller can only attach the transcoder to flows that set up after
the change, so its output rate "significantly lags behind the target".

Scaling: 1:4 in time (90 s run, 10 s lifetimes, throttle 15–60 s) and 100
concurrent flows; per-flow rate chosen so event counts stay tractable.
"""

import pytest

from repro.baselines import SdnVideoSystem
from repro.control import SdnController
from repro.core import SdnfvApp, ServiceGraph
from repro.core.service_graph import EXIT
from repro.dataplane import NfvHost
from repro.metrics import series_table
from repro.nfs import PolicyEngine, Transcoder, VideoFlowDetector
from repro.sim import S, Simulator
from repro.workloads import VideoSessionWorkload

RUN_S = 90
THROTTLE_ON_S = 15
THROTTLE_OFF_S = 60
FLOWS = 100
LIFETIME_NS = 10 * S
PER_FLOW_MBPS = 0.35
PACKET = 512


def _workload(sim, system):
    return VideoSessionWorkload(
        sim, system, concurrent_flows=FLOWS,
        mean_lifetime_ns=LIFETIME_NS, per_flow_mbps=PER_FLOW_MBPS,
        packet_size=PACKET, window_ns=1 * S)


def run_sdnfv():
    sim = Simulator()
    app = SdnfvApp(sim)
    host = NfvHost(sim, name="v0")
    app.register_host(host)
    policy = PolicyEngine("pe", detector_service="vd",
                          transcoder_service="tc", exit_port="eth1")
    host.add_nf(VideoFlowDetector("vd"), ring_slots=8192)
    host.add_nf(policy, ring_slots=8192)
    host.add_nf(Transcoder("tc", keep_ratio=0.5), ring_slots=8192)
    graph = ServiceGraph("video")
    graph.add_service("vd", read_only=True)
    graph.add_service("pe")
    graph.add_service("tc")
    graph.add_edge("vd", "pe", default=True)
    graph.add_edge("vd", EXIT)
    graph.add_edge("vd", "tc")
    graph.add_edge("pe", "tc", default=True)
    graph.add_edge("pe", EXIT)
    graph.add_edge("tc", EXIT, default=True)
    graph.set_entry("vd")
    app.deploy(graph, proactive=True)
    workload = _workload(sim, host)
    sim.schedule(THROTTLE_ON_S * S, lambda: policy.set_throttle(True))
    sim.schedule(THROTTLE_OFF_S * S, lambda: policy.set_throttle(False))
    sim.run(until=RUN_S * S)
    return workload


def run_sdn():
    sim = Simulator()
    controller = SdnController(sim, service_time_ns=500_000,
                               propagation_ns=500_000)
    system = SdnVideoSystem(sim, controller)
    workload = _workload(sim, system)
    sim.schedule(THROTTLE_ON_S * S, lambda: system.set_throttle(True))
    sim.schedule(THROTTLE_OFF_S * S, lambda: system.set_throttle(False))
    sim.run(until=RUN_S * S)
    return workload


def _pps(workload, start_s, stop_s):
    meter = workload.out_meter
    bucket = {int(t): pps for t, pps in meter.pps_series()}
    window = [bucket.get(t, 0.0) for t in range(start_s, stop_s)]
    return sum(window) / max(1, len(window))


def test_fig11_policy_change_latency(report, benchmark):
    def run():
        return run_sdnfv(), run_sdn()

    sdnfv, sdn = benchmark.pedantic(run, iterations=1, rounds=1)

    base_sdnfv = _pps(sdnfv, 5, THROTTLE_ON_S)
    base_sdn = _pps(sdn, 5, THROTTLE_ON_S)

    # Right after the change SDNFV is already at ~half rate...
    early_sdnfv = _pps(sdnfv, THROTTLE_ON_S + 2, THROTTLE_ON_S + 7)
    assert early_sdnfv == pytest.approx(base_sdnfv / 2, rel=0.2)
    # ...while the SDN system still sends most traffic untranscoded.
    early_sdn = _pps(sdn, THROTTLE_ON_S + 2, THROTTLE_ON_S + 7)
    assert early_sdn > base_sdn * 0.65
    # Eventually (flows churned) SDN converges toward half rate too.
    late_sdn = _pps(sdn, THROTTLE_OFF_S - 10, THROTTLE_OFF_S)
    assert late_sdn < base_sdn * 0.65
    # After throttling ends, SDNFV recovers quickly.
    recovered = _pps(sdnfv, THROTTLE_OFF_S + 5, THROTTLE_OFF_S + 15)
    assert recovered == pytest.approx(base_sdnfv, rel=0.25)

    rows_t = list(range(0, RUN_S, 5))
    columns = {"t_s": rows_t,
               "SDNFV": [_pps(sdnfv, t, t + 5) for t in rows_t],
               "SDN": [_pps(sdn, t, t + 5) for t in rows_t]}
    report("fig11_policy_change", series_table(
        f"Fig. 11 — output packets/s (throttle on at {THROTTLE_ON_S}s, "
        f"off at {THROTTLE_OFF_S}s; timeline scaled 1:4)", columns),
        metrics=columns)
