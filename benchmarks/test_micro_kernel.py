"""Micro-benchmark: the zero-allocation hot path vs the captured baseline.

§4.1–4.2: SDNFV's prototype never allocates on the wire path — packets
live in DPDK huge-page mempools, descriptors in fixed rings, timers in
``rte_timer`` wheels.  This benchmark locks in the simulator-side
analogue: the Fig. 7 64 B workload must run ≥1.5× faster and allocate
≥3× fewer hot-path objects per packet than the committed pre-change
baseline (``benchmarks/results/micro_kernel_baseline.json``), while
moving *exactly* the same packets — identical RX/TX/drop conservation
counters and identical kernel events per packet.

Four phases, mirroring how the baseline was captured:

1. **calibration** — a fixed pure-Python spin (heap churn + method
   dispatch, the kernel's instruction mix) timed alongside the
   workload.  The machine this suite runs on drifts ±40% in speed
   between epochs (frequency scaling, co-tenants); dividing both sides
   of the speedup by their same-epoch spin time cancels that drift, so
   the asserted ratio compares *code*, not the clock of the day;
2. **wall** — min of ``WALL_ROUNDS`` timed runs (min filters scheduler
   noise; the workload is deterministic, so only the clock varies);
3. **allocation counting** — constructor patching on the hot-path
   classes (``Event``/``Timeout``/``Packet``/headers/descriptors);
   recycled objects skip ``__init__``, so this counts true allocations;
4. **tracemalloc** — peak traced memory, as supplementary evidence.
"""

import heapq
import json
import pathlib
import time
import tracemalloc

from repro.dataplane import NfvHost
from repro.dataplane import descriptors as _descriptors
from repro.net import FiveTuple
from repro.net import headers as _headers
from repro.net import packet as _packet
from repro.nfs import NoOpNf
from repro.sim import MS, Simulator
from repro.sim import events as _events
from repro.workloads import FlowSpec, PktGen

from tests.conftest import install_chain

BASELINE_PATH = (pathlib.Path(__file__).parent / "results"
                 / "micro_kernel_baseline.json")
WINDOW_NS = 3 * MS
WALL_ROUNDS = 3
MIN_WALL_SPEEDUP = 1.5
MIN_ALLOC_IMPROVEMENT = 3.0


class _SpinObj:
    __slots__ = ("a", "b")

    def __init__(self) -> None:
        self.a = 0
        self.b = 0

    def bump(self, i: int) -> int:
        self.a += i
        return self.a


def calibration_spin() -> float:
    """Machine-speed proxy: fixed pure-Python heap + dispatch churn.

    Must stay byte-identical to the copy used when the committed
    baseline was captured — the normalization only cancels machine
    drift if both epochs spin the exact same work.
    """
    obj = _SpinObj()
    heap: list = []
    push, pop = heapq.heappush, heapq.heappop
    start = time.perf_counter()
    for i in range(400_000):
        push(heap, ((i * 7) & 1023, i))
        obj.bump(i)
        if len(heap) > 64:
            pop(heap)
    return time.perf_counter() - start

# Hot-path classes whose constructor invocations we count: one entry per
# packet/event/descriptor the pre-change pipeline allocated per hop.
_COUNTED = (_events.Event, _events.Timeout, _packet.Packet,
            _headers.EthernetHeader, _headers.Ipv4Header,
            _headers.TcpHeader, _headers.UdpHeader,
            _descriptors.PacketDescriptor)


def build():
    """The Fig. 7 64 B workload: two-NF no-op chain at 10 Gbps offered."""
    sim = Simulator()
    host = NfvHost(sim, name="micro")
    services = ["noop0", "noop1"]
    for service in services:
        host.add_nf(NoOpNf(service), ring_slots=1024)
    install_chain(host, services)
    flow = FiveTuple("10.0.0.1", "10.0.0.2", 6, 1234, 80)
    gen = PktGen(sim, host, window_ns=MS)
    gen.add_flow(FlowSpec(flow=flow, rate_mbps=10_000.0, packet_size=64,
                          stop_ns=2 * WINDOW_NS))
    return sim, host, gen


def drop_total(stats) -> int:
    return (stats.dropped_ring_full + stats.dropped_no_vm
            + stats.dropped_no_rule + stats.lost_in_nf
            + stats.nic_rx_dropped)


def run_wall() -> dict:
    sim, host, gen = build()
    start = time.perf_counter()
    sim.run(until=3 * WINDOW_NS)
    wall_s = time.perf_counter() - start
    stats = host.stats
    return {
        "wall_s": wall_s,
        "gbps": gen.rx_meter.mean_gbps(WINDOW_NS, 2 * WINDOW_NS),
        "rx": stats.rx_packets,
        "tx": stats.tx_packets,
        "drops": drop_total(stats),
        "events_per_pkt": sim.events_scheduled / stats.rx_packets,
        "pool_hits": stats.pool_hits,
        "pool_misses": stats.pool_misses,
        "pool_exhausted": stats.pool_exhausted,
    }


def run_counting() -> dict:
    """Count hot-path constructor invocations over one full run."""
    counts: dict[str, int] = {}
    patched = []
    for cls in _COUNTED:
        orig = cls.__init__

        def counting_init(self, *args, _orig=orig, **kwargs):
            name = type(self).__name__
            counts[name] = counts.get(name, 0) + 1
            _orig(self, *args, **kwargs)

        cls.__init__ = counting_init
        patched.append((cls, orig))
    try:
        sim, host, _gen = build()
        sim.run(until=3 * WINDOW_NS)
        rx = host.stats.rx_packets
    finally:
        for cls, orig in patched:
            cls.__init__ = orig
    total = sum(counts.values())
    return {"alloc_counts": counts, "allocs_total": total,
            "allocs_per_pkt": total / rx}


def run_tracemalloc() -> dict:
    sim, _host, _gen = build()
    tracemalloc.start()
    sim.run(until=3 * WINDOW_NS)
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {"tracemalloc_peak_kib": peak / 1024.0}


def test_micro_kernel_fast_path(report):
    baseline = json.loads(BASELINE_PATH.read_text())

    # Interleave spins with the timed runs so the calibration samples
    # the same epoch the workload ran in.
    walls = []
    spins = []
    for _ in range(WALL_ROUNDS):
        spins.append(calibration_spin())
        walls.append(run_wall())
    spins.append(calibration_spin())
    measured = min(walls, key=lambda r: r["wall_s"])
    measured["calibration_spin_s"] = min(spins)
    measured.update(run_counting())
    measured.update(run_tracemalloc())

    # Behavioural parity first: the fast path must move exactly the same
    # packets as the pre-change pipeline — conservation counters and
    # delivered throughput identical, and no more kernel events per
    # packet than the baseline (the timer-lane rewrite sheds a few
    # process-start wakeups, so slightly fewer is expected).
    assert measured["rx"] == baseline["rx"]
    assert measured["tx"] == baseline["tx"]
    assert measured["drops"] == baseline["drops"]
    assert measured["gbps"] == baseline["gbps"]
    assert measured["events_per_pkt"] <= baseline["events_per_pkt"]

    raw_speedup = baseline["wall_s"] / measured["wall_s"]
    # Normalize both epochs by their calibration spin: compares code,
    # not the machine's mood.
    speedup = ((baseline["wall_s"] / baseline["calibration_spin_s"])
               / (measured["wall_s"] / measured["calibration_spin_s"]))
    alloc_improvement = (baseline["allocs_per_pkt"]
                         / max(measured["allocs_per_pkt"], 1e-9))
    assert speedup >= MIN_WALL_SPEEDUP, (
        f"calibrated wall-clock speedup {speedup:.3f}x below the "
        f"{MIN_WALL_SPEEDUP}x floor "
        f"({baseline['wall_s']:.3f}s -> {measured['wall_s']:.3f}s; "
        f"spin {baseline['calibration_spin_s']:.3f}s -> "
        f"{measured['calibration_spin_s']:.3f}s)")
    assert alloc_improvement >= MIN_ALLOC_IMPROVEMENT, (
        f"allocs/pkt only improved {alloc_improvement:.2f}x "
        f"({baseline['allocs_per_pkt']:.3f} -> "
        f"{measured['allocs_per_pkt']:.3f})")

    lines = [
        "Micro-kernel fast path vs pre-change baseline (Fig. 7, 64 B)",
        f"  wall-clock      {baseline['wall_s']:.3f} s -> "
        f"{measured['wall_s']:.3f} s ({speedup:.2f}x calibrated, "
        f"{raw_speedup:.2f}x raw, floor {MIN_WALL_SPEEDUP}x)",
        f"  calibration     {baseline['calibration_spin_s']:.3f} s -> "
        f"{measured['calibration_spin_s']:.3f} s spin",
        f"  allocs/packet   {baseline['allocs_per_pkt']:.3f} -> "
        f"{measured['allocs_per_pkt']:.4f} ({alloc_improvement:.1f}x "
        f"fewer, floor {MIN_ALLOC_IMPROVEMENT}x)",
        f"  events/packet   {baseline['events_per_pkt']:.4f} -> "
        f"{measured['events_per_pkt']:.4f}",
        f"  rx/tx/drops     {measured['rx']}/{measured['tx']}/"
        f"{measured['drops']} (identical)",
        f"  pool hit/miss   {measured['pool_hits']}/"
        f"{measured['pool_misses']} (exhausted "
        f"{measured['pool_exhausted']})",
        f"  tracemalloc     {baseline['tracemalloc_peak_kib']:.0f} KiB -> "
        f"{measured['tracemalloc_peak_kib']:.0f} KiB peak",
    ]
    report("micro_kernel", "\n".join(lines),
           metrics={**measured,
                    "wall_speedup": speedup,
                    "wall_speedup_raw": raw_speedup,
                    "alloc_improvement": alloc_improvement,
                    "baseline_wall_s": baseline["wall_s"],
                    "baseline_calibration_spin_s":
                        baseline["calibration_spin_s"],
                    "baseline_allocs_per_pkt":
                        baseline["allocs_per_pkt"]},
           config={"workload": "fig7_64B_noop_chain2",
                   "wall_rounds": WALL_ROUNDS,
                   "window_ns": WINDOW_NS})
