"""Figure 5: placement quality — greedy vs MILP vs Division Heuristic.

Paper setup: Rocketfuel AS-16631 (22 nodes / 64 edges), homogeneous
2-core nodes, every flow's chain is J1–J5, each core supports 10 flows
for J1–J4 and 4 flows for J5.

Left sub-figure: max utilization (link and core) versus number of flows —
"the greedy heuristic is inefficient ... Solving the MILP optimally ...
accommodates 3 times as many flows", the Division heuristic ≈85 % of
optimal.  Right sub-figure: flows supported as capacity scales.

Scaled for CI runtime: flow counts are modest and the MILP runs with a
time limit; shapes, not absolute solver times, are the reproduction
target.
"""


from repro.core.placement import (
    DivisionSolver,
    FlowRequest,
    GreedySolver,
    PlacementProblem,
)
from repro.core.placement.milp import InfeasiblePlacement, MilpSolver
from repro.metrics import series_table
from repro.topology import rocketfuel_like

CHAIN = ("J1", "J2", "J3", "J4", "J5")
PER_CORE = {"J1": 10, "J2": 10, "J3": 10, "J4": 10, "J5": 4}


def paper_problem(flow_count: int, capacity_multiplier: float = 1.0,
                  bandwidth: float = 0.2) -> PlacementProblem:
    topology = rocketfuel_like(
        cores_per_node=2,
        link_capacity_gbps=10.0 * capacity_multiplier)
    names = topology.node_names
    per_core = {service: round(count * capacity_multiplier)
                for service, count in PER_CORE.items()}
    flows = [FlowRequest(
        flow_id=f"f{i}",
        entry=names[(i * 5) % len(names)],
        exit=names[(i * 11 + 7) % len(names)],
        chain=CHAIN, bandwidth_gbps=bandwidth)
        for i in range(flow_count)]
    return PlacementProblem(topology=topology, flows=flows,
                            flows_per_core=per_core)


def test_fig5_utilization_vs_flow_count(report, benchmark):
    """Left sub-figure: Greedy-Link/Greedy-Core vs ILP-Link/ILP-Core."""
    flow_counts = [4, 8, 12]

    def run():
        rows = []
        for count in flow_counts:
            problem = paper_problem(count)
            greedy = GreedySolver().solve(problem)
            ilp = DivisionSolver(batch_size=4, time_limit_per_batch_s=12,
                                 mip_rel_gap=0.25).solve(problem)
            rows.append((count, greedy, ilp))
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    for count, greedy, ilp in rows:
        assert ilp.placed_count == count
        # The ILP family never does worse than greedy on the objective.
        if greedy.placed_count == count:
            assert (ilp.max_utilization
                    <= greedy.max_utilization + 0.05)
    # At the largest count the ILP's balanced placement keeps core
    # utilization clearly below greedy's first-fit packing.
    _count, greedy_last, ilp_last = rows[-1]
    assert (ilp_last.max_core_utilization
            < greedy_last.max_core_utilization)

    columns = {
        "flows": [row[0] for row in rows],
        "Greedy-Link": [row[1].max_link_utilization for row in rows],
        "Greedy-Core": [row[1].max_core_utilization for row in rows],
        "ILP-Link": [row[2].max_link_utilization for row in rows],
        "ILP-Core": [row[2].max_core_utilization for row in rows]}
    report("fig5_left_utilization", series_table(
        "Fig. 5 (left) — max utilization vs number of flows", columns),
        metrics=columns)


def test_fig5_flows_accommodated(report, benchmark):
    """Greedy rejects flows well before the ILP family does."""
    def run():
        # 36 offered flows: greedy saturates around 28 on this topology.
        problem = paper_problem(36, bandwidth=0.4)
        greedy = GreedySolver().solve(problem)
        division = DivisionSolver(batch_size=4,
                                  time_limit_per_batch_s=12,
                                  mip_rel_gap=0.25).solve(problem)
        return greedy, division

    greedy, division = benchmark.pedantic(run, iterations=1, rounds=1)
    # Paper: optimal accommodates ~3x greedy; division ~85% of optimal.
    assert division.placed_count > greedy.placed_count
    columns = {"solver": ["greedy", "division"],
               "placed": [greedy.placed_count, division.placed_count],
               "max_util": [greedy.max_utilization,
                            division.max_utilization]}
    report("fig5_flows_accommodated", series_table(
        "Fig. 5 — flows accommodated (36 offered, J1–J5 chains)",
        columns), metrics=columns)


def test_fig5_right_capacity_scaling(report, benchmark):
    """Right sub-figure: scaling CPU+link capacity supports more flows
    and the division heuristic keeps beating greedy."""
    def run():
        rows = []
        for multiplier in (1.0, 2.0):
            problem = paper_problem(16, capacity_multiplier=multiplier,
                                    bandwidth=0.4)
            greedy = GreedySolver().solve(problem)
            division = DivisionSolver(batch_size=4,
                                      time_limit_per_batch_s=12,
                                      mip_rel_gap=0.25).solve(problem)
            rows.append((multiplier, greedy.placed_count,
                         division.placed_count))
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    for _multiplier, greedy_placed, division_placed in rows:
        assert division_placed >= greedy_placed
    # More capacity -> at least as many flows for each solver.
    assert rows[1][1] >= rows[0][1]
    assert rows[1][2] >= rows[0][2]
    columns = {"capacity_x": [row[0] for row in rows],
               "greedy_placed": [row[1] for row in rows],
               "division_placed": [row[2] for row in rows]}
    report("fig5_right_scaling", series_table(
        "Fig. 5 (right) — flows placed vs capacity multiplier", columns),
        metrics=columns)


def test_fig5_division_within_85pct_of_optimal(report, benchmark):
    """§3.5: "we can fit about 85% of the flows accommodated by the
    optimal solution" — checked on a size the exact MILP can handle."""
    def run():
        problem = paper_problem(10, bandwidth=0.4)
        try:
            optimal = MilpSolver(time_limit_s=45,
                                 mip_rel_gap=0.1).solve(problem)
            optimal_count = optimal.placed_count
        except InfeasiblePlacement:
            optimal_count = None
        division = DivisionSolver(batch_size=5,
                                  time_limit_per_batch_s=15,
                                  mip_rel_gap=0.25).solve(problem)
        return optimal_count, division.placed_count

    optimal_count, division_count = benchmark.pedantic(
        run, iterations=1, rounds=1)
    if optimal_count is not None:
        assert division_count >= 0.8 * optimal_count
    columns = {
        "solver": ["optimal", "division"],
        "placed": [optimal_count if optimal_count is not None else -1,
                   division_count]}
    report("fig5_division_vs_optimal", series_table(
        "Fig. 5 — division heuristic vs optimal (10 flows offered)",
        columns), metrics=columns)
