"""Ablation: the columnar burst kernel (struct-of-arrays data path).

Two measurements:

1. **Columnar vs. object pipeline** on the Fig. 7 saturation workload
   (2-VM NoOp chain, 64 B at burst 32, offered above line rate — the
   regime where RX bursts actually fill).  The columnar path must
   produce *identical* model outputs (throughput, conservation totals)
   while cutting wall-clock time by >= 1.3x.  A committed object-path
   baseline (``results/ablation_columnar_baseline.json``) pins the
   deterministic totals across machines; the wall-clock ratio against
   that file is reported but only the in-run ratio gates (absolute
   wall time is machine-dependent).

2. **Fig. 10-style saturation sweep at 10^5 concurrent flows** on the
   sharded kernel (the PR 6 follow-up): offered load is swept through
   line rate on a two-host chain whose traffic round-robins over
   100 000 distinct five-tuples, churning the per-flow plan caches on
   every burst.  Output rate must track offered load below saturation
   and plateau above it.
"""

import json
import pathlib
import time

import pytest

from repro.core import EXIT, ServiceGraph
from repro.dataplane import NfvHost
from repro.metrics import series_table
from repro.net import FiveTuple
from repro.nfs import NoOpNf
from repro.sim import MS, US, Simulator
from repro.sim.sharded import Scenario, ShardedSimulator, TrafficSpec
from repro.topology import Link, NodeSpec, Topology
from repro.workloads import FlowSpec, PktGen

from tests.conftest import install_chain

WINDOW_NS = 3 * MS
OFFERED_MBPS = 16_000.0  # past line rate: burst-32 RX batches fill
BURST_SIZE = 32
MIN_SPEEDUP = 1.3

BASELINE_PATH = (pathlib.Path(__file__).parent / "results"
                 / "ablation_columnar_baseline.json")

#: The model outputs that must not move between the two data paths (and
#: across machines, via the committed baseline).
TOTAL_KEYS = ("sent", "received", "rx", "tx", "drops")


def measure(columnar: bool) -> dict:
    sim = Simulator()
    host = NfvHost(sim, name="columnar" if columnar else "object",
                   burst_size=BURST_SIZE, columnar=columnar)
    services = ["noop0", "noop1"]
    for service in services:
        host.add_nf(NoOpNf(service), ring_slots=1024)
    install_chain(host, services)
    flow = FiveTuple("10.0.0.1", "10.0.0.2", 6, 1234, 80)
    gen = PktGen(sim, host, window_ns=MS)
    gen.add_flow(FlowSpec(flow=flow, rate_mbps=OFFERED_MBPS, packet_size=64,
                          stop_ns=2 * WINDOW_NS))
    start = time.perf_counter()
    # One extra window past stop_ns so the pipeline drains and every
    # received packet is either transmitted or counted as a drop.
    sim.run(until=3 * WINDOW_NS)
    wall_s = time.perf_counter() - start
    stats = host.stats
    drops = (stats.dropped_ring_full + stats.dropped_no_vm
             + stats.dropped_no_rule + stats.lost_in_nf)
    return {
        "wall_s": wall_s,
        "gbps": gen.rx_meter.mean_gbps(WINDOW_NS, 2 * WINDOW_NS),
        "sent": gen.sent,
        "received": gen.received,
        "rx": stats.rx_packets,
        "tx": stats.tx_packets,
        "drops": drops,
        "events_per_pkt": sim.events_scheduled / stats.rx_packets,
        "columnar_batches": stats.columnar_batches,
        "object_fallbacks": stats.object_fallbacks,
        "lookup_batches": stats.lookup_batches,
    }


def test_ablation_columnar_vs_object_path(report, benchmark):
    def run():
        return measure(columnar=False), measure(columnar=True)

    object_path, columnar = benchmark.pedantic(run, iterations=1, rounds=1)

    # The columnar kernel is a wall-clock optimization, not a model
    # change: every observable total is identical.
    for key in (*TOTAL_KEYS, "gbps", "events_per_pkt"):
        assert columnar[key] == object_path[key], key
    assert columnar["rx"] == columnar["tx"] + columnar["drops"]
    assert columnar["columnar_batches"] > 0
    assert columnar["object_fallbacks"] == 0
    assert object_path["columnar_batches"] == 0

    # The acceptance gate: >= 1.3x at burst 32 on the saturated Fig. 7
    # workload, measured against the object path in the same process.
    speedup = object_path["wall_s"] / columnar["wall_s"]
    assert speedup >= MIN_SPEEDUP, (
        f"columnar speedup {speedup:.2f}x < {MIN_SPEEDUP}x")

    # Cross-machine anchor: the committed object-path baseline must see
    # the exact same deterministic totals; its wall-clock ratio is
    # reported (machine-dependent, non-gating).
    baseline = json.loads(BASELINE_PATH.read_text())
    for key in TOTAL_KEYS:
        assert columnar[key] == baseline["totals"][key], key
    baseline_ratio = baseline["wall_s"] / columnar["wall_s"]

    columns = {
        "path": ["object", "columnar", "baseline(object)"],
        "wall_s": [object_path["wall_s"], columnar["wall_s"],
                   baseline["wall_s"]],
        "gbps": [object_path["gbps"], columnar["gbps"],
                 baseline["gbps"]],
        "received": [object_path["received"], columnar["received"],
                     baseline["totals"]["received"]],
    }
    report("ablation_columnar", series_table(
        "Ablation — columnar burst kernel "
        f"(64 B, burst {BURST_SIZE}, {OFFERED_MBPS:.0f} Mbps offered)\n"
        f"speedup in-run {speedup:.2f}x, vs committed baseline "
        f"{baseline_ratio:.2f}x", columns),
        metrics={"speedup": speedup, "baseline_ratio": baseline_ratio,
                 "object": object_path, "columnar": columnar},
        config={"packet_size": 64, "offered_mbps": OFFERED_MBPS,
                "burst_size": BURST_SIZE, "chain": ["noop0", "noop1"],
                "ring_slots": 1024, "window_ns": WINDOW_NS})


# ----------------------------------------------------------------------
# Fig. 10-style saturation sweep at 10^5 concurrent flows (sharded)
# ----------------------------------------------------------------------

SWEEP_RATES = [6_000.0, 12_000.0, 24_000.0]
SWEEP_FLOWS = 100_000
SWEEP_DURATION = 4 * MS
SWEEP_STOP = 3 * MS
LINK_DELAY = 500 * US


def sweep_scenario(rate_mbps: float) -> Scenario:
    topology = Topology()
    for name in ("n0", "n1"):
        topology.add_node(NodeSpec(name=name, cores=4))
    topology.add_link(Link(a="n0", b="n1", delay_ns=LINK_DELAY))
    graph = ServiceGraph("sweep")
    graph.add_service("a", read_only=True)
    graph.add_service("b", read_only=True)
    graph.add_edge("a", "b", default=True)
    graph.add_edge("b", EXIT, default=True)
    graph.set_entry("a")
    return Scenario(
        topology=topology, graph=graph,
        placement={"a": "n0", "b": "n1"},
        duration_ns=SWEEP_DURATION,
        columnar=True,
        traffic=[TrafficSpec(
            host="n0",
            flow=FiveTuple("10.0.0.1", "10.0.0.2", 6, 1, 80),
            rate_mbps=rate_mbps, packet_size=64, stop_ns=SWEEP_STOP,
            flow_count=SWEEP_FLOWS)],
    )


def run_sweep_point(rate_mbps: float) -> dict:
    started = time.perf_counter()
    result = ShardedSimulator(sweep_scenario(rate_mbps), shards=2,
                              workers=0).run()
    wall_s = time.perf_counter() - started
    totals = result.totals()
    window_s = SWEEP_STOP / 1e9
    ingress = result.host_summary("n0")
    return {
        "offered_mbps": rate_mbps,
        "output_mbps": totals["received"] * 64 * 8 / window_s / 1e6,
        "sent": totals["sent"],
        "received": totals["received"],
        "rx": totals["rx_packets"],
        "tx": totals["tx_packets"],
        "wall_s": wall_s,
        "columnar_batches": ingress["columnar_batches"],
        "lookup_batches": ingress["lookup_batches"],
    }


def test_fig10_saturation_sweep_100k_flows(report, benchmark):
    points = benchmark.pedantic(
        lambda: [run_sweep_point(rate) for rate in SWEEP_RATES],
        iterations=1, rounds=1)
    by_rate = dict(zip(SWEEP_RATES, points, strict=True))

    # The sweep is real: >= 10^5 packets through 10^5 distinct flows at
    # the top rate, on the columnar path.
    top = by_rate[SWEEP_RATES[-1]]
    assert top["sent"] >= 100_000
    assert top["columnar_batches"] > 0
    assert top["lookup_batches"] > 0

    # Below line rate the network keeps up with the offered load...
    under = by_rate[SWEEP_RATES[0]]
    assert under["received"] == pytest.approx(under["sent"], rel=0.05)
    # ...and above it the output rate saturates: doubling the offered
    # load again buys almost nothing.
    mid = by_rate[SWEEP_RATES[1]]
    assert top["output_mbps"] < 1.15 * mid["output_mbps"]
    assert mid["output_mbps"] > under["output_mbps"]

    columns = {
        "offered_mbps": SWEEP_RATES,
        "output_mbps": [by_rate[r]["output_mbps"] for r in SWEEP_RATES],
        "sent": [by_rate[r]["sent"] for r in SWEEP_RATES],
        "received": [by_rate[r]["received"] for r in SWEEP_RATES],
        "wall_s": [by_rate[r]["wall_s"] for r in SWEEP_RATES],
    }
    report("fig10_saturation_sweep", series_table(
        f"Fig. 10-style saturation sweep ({SWEEP_FLOWS} concurrent "
        "flows, 2-host sharded chain, columnar)", columns),
        metrics=columns,
        config={"flow_count": SWEEP_FLOWS, "packet_size": 64,
                "shards": 2, "duration_ns": SWEEP_DURATION,
                "columnar": True})
