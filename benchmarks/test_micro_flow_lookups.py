"""§5.1 micro-measurements: flow-table lookup, queue scan, SDN lookup.

Paper: "a Flow Table lookup takes an average of 30 nanoseconds, and the
NF Manager can determine the VM with minimum queue sizes in 15
nanoseconds.  Performing an SDN lookup takes an average of 31
milliseconds, but this is deferred from the critical path."

The first two are model constants charged per operation; the SDN lookup
is *measured* end to end through the simulated controller, and the
off-critical-path claim is verified by showing established flows keep
their latency while a miss is outstanding.
"""

import time

import pytest

from repro.control import SdnController
from repro.dataplane import FlowTableEntry, HostCosts, NfvHost, ToPort
from repro.dataplane.flow_table import FlowTable
from repro.metrics import comparison_table
from repro.net import FiveTuple, FlowMatch
from repro.nfs import NoOpNf
from repro.sim import MS, Simulator, US

from tests.conftest import install_chain


def test_micro_costs_and_sdn_lookup(report, benchmark):
    def run():
        costs = HostCosts()
        sim = Simulator()
        controller = SdnController(sim)
        reply = controller.flow_request(
            "h0", "eth0", FiveTuple("1.1.1.1", "2.2.2.2", 6, 1, 2))
        sim.run(reply)
        sdn_ms = sim.now / MS
        return costs, sdn_ms

    costs, sdn_ms = benchmark.pedantic(run, iterations=1, rounds=1)
    assert costs.flow_lookup_ns == 30
    assert costs.queue_scan_ns == 15
    assert sdn_ms == pytest.approx(31.0, abs=0.1)

    report("micro_flow_lookups", comparison_table(
        "§5.1 micro-measurements",
        [("flow table lookup", "30 ns", f"{costs.flow_lookup_ns} ns"),
         ("min-queue scan", "15 ns", f"{costs.queue_scan_ns} ns"),
         ("SDN lookup (round trip)", "31 ms", f"{sdn_ms:.2f} ms")]),
        metrics={"flow_lookup_ns": costs.flow_lookup_ns,
                 "queue_scan_ns": costs.queue_scan_ns,
                 "sdn_lookup_ms": sdn_ms})


def test_sdn_lookup_off_critical_path(report, benchmark):
    """A pending 31 ms SDN lookup must not delay established flows."""
    def run():
        sim = Simulator()

        class SlowApp:
            def rules_for(self, host, scope, flow):
                return [FlowTableEntry(scope=scope,
                                       match=FlowMatch.exact(flow),
                                       actions=(ToPort("eth1"),))]

        controller = SdnController(sim, northbound=SlowApp())
        host = NfvHost(sim, name="h0", controller=controller)
        host.add_nf(NoOpNf("svc"))
        established = FiveTuple("10.0.0.1", "10.0.0.2", 6, 1, 80)
        install_chain(host, ["svc"],
                      match=FlowMatch.exact(established))
        latencies = []
        host.port("eth1").on_egress = (
            lambda packet: latencies.append(sim.now - packet.created_at))

        from repro.net import Packet

        def drive():
            # Trigger a miss (new flow) then keep sending established
            # traffic while the 31 ms controller round trip is pending.
            new_flow = FiveTuple("10.9.9.9", "10.0.0.2", 6, 5, 80)
            host.inject("eth0", Packet(flow=new_flow, size=256,
                                       created_at=sim.now))
            for _ in range(100):
                host.inject("eth0", Packet(flow=established, size=256,
                                           created_at=sim.now))
                yield sim.timeout(100 * US)

        sim.process(drive())
        sim.run(until=60 * MS)
        return latencies

    latencies = benchmark.pedantic(run, iterations=1, rounds=1)
    # 100 established packets + 1 resolved miss eventually egress.
    assert len(latencies) == 101
    established_latencies = sorted(latencies)[:100]
    # Established flows stayed on the fast path (~1.4 µs), never waited
    # on the controller.
    assert max(established_latencies) < 10 * US
    report("micro_async_sdn", comparison_table(
        "SDN lookup deferral (established-flow latency during a miss)",
        [("worst established RTT",
          "unaffected (<< 31 ms)",
          f"{max(established_latencies) / 1000:.2f} us")]),
        metrics={"worst_established_rtt_us":
                 max(established_latencies) / 1000})


def test_flow_table_lookup_wall_clock(benchmark):
    """Real (wall-clock) lookup speed of the FlowTable implementation —
    the one benchmark here measuring our code, not the model."""
    table = FlowTable()
    flows = [FiveTuple(f"10.0.{i // 250}.{i % 250 + 1}", "10.1.0.1",
                       6, 1000 + i, 80) for i in range(1000)]
    for flow in flows:
        table.install(FlowTableEntry(scope="svc",
                                     match=FlowMatch.exact(flow),
                                     actions=(ToPort("eth1"),)))

    def lookups():
        for flow in flows:
            table.lookup("svc", flow)

    benchmark(lookups)


def test_hash_bucket_cached_key_speedup(report):
    """RSS-style bucketing reuses the cached packed key.

    ``FiveTuple.hash_bucket`` packs both IPs to integers; the packed key
    is computed once per flow and cached, so every later bucketing of
    the same flow (load-balancer rehash, per-flow stats) skips the
    string parsing.  Assert the warm path is measurably faster than the
    first (cold) call and that caching never changes the bucket.
    """
    n_flows, rounds, buckets = 5000, 5, 64

    def fresh_flows():
        return [FiveTuple(f"10.{i // 65536}.{(i // 256) % 256}.{i % 256}",
                          "10.1.0.1", 6, 1000 + i % 50000, 80)
                for i in range(n_flows)]

    cold_times, warm_times = [], []
    for _ in range(rounds):
        flows = fresh_flows()
        start = time.perf_counter()
        cold_buckets = [flow.hash_bucket(buckets) for flow in flows]
        cold_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        warm_buckets = [flow.hash_bucket(buckets) for flow in flows]
        warm_times.append(time.perf_counter() - start)
        assert warm_buckets == cold_buckets  # caching is invisible

    cold_us = min(cold_times) * 1e6 / n_flows
    warm_us = min(warm_times) * 1e6 / n_flows
    speedup = cold_us / warm_us
    assert warm_us < cold_us, (
        f"cached packed key not faster: cold {cold_us:.3f} us/call vs "
        f"warm {warm_us:.3f} us/call")

    report("micro_hash_bucket", comparison_table(
        "FiveTuple.hash_bucket packed-key cache",
        [("first call (packs IPs)", "slower", f"{cold_us:.3f} us"),
         ("cached calls", "faster", f"{warm_us:.3f} us"),
         ("speedup", "> 1x", f"{speedup:.2f}x")]),
        metrics={"cold_us_per_call": cold_us,
                 "warm_us_per_call": warm_us,
                 "cached_key_speedup": speedup})
