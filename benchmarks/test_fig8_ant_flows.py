"""Figure 8: the Ant Flow Detector reroutes an ant flow to a faster link.

Paper timeline (180 s): two flows share a slow link and see high latency;
at 50 s Flow 1 (64 B packets) lowers its rate, is reclassified as an ant,
and is moved to a faster link via ChangeDefault — its latency drops, and
Flow 2's latency also improves because contention on the slow link falls.
At 105 s Flow 1 raises its rate again and is reclassified as an elephant.

Scaling: the timeline runs 1:10 (18 s simulated), rates are scaled so the
slow link saturates the same way, and the detector window shrinks from
2 s to 0.2 s accordingly.
"""


from repro.dataplane import NfvHost
from repro.metrics import series_table
from repro.net import FiveTuple
from repro.nfs import AntFlowDetector
from repro.sim import MS, S, Simulator
from repro.workloads import FlowSpec, PktGen
from repro.dataplane import FlowTableEntry, ToPort, ToService
from repro.net.flow import FlowMatch

# Scaled timeline (1:10 against the paper's 180 s).
PHASE1_END = 5 * S     # both flows fast: elephants
PHASE2_END = 10_500 * MS  # flow 1 slow: ant
RUN_END = 18 * S

SLOW_LINK_MBPS = 40.0   # slow shared link capacity
FAST_LINK_MBPS = 1000.0


def run_fig8():
    sim = Simulator()
    host = NfvHost(sim, name="ant0", ports=("eth0",))
    # Two egress links with very different capacities: queueing on the
    # slow link is what creates the latency difference.
    host.manager.add_port("slow", line_rate_gbps=SLOW_LINK_MBPS / 1000.0)
    host.manager.add_port("fast", line_rate_gbps=FAST_LINK_MBPS / 1000.0)
    detector = AntFlowDetector(
        "ant", fast_target="port:fast", slow_target="port:slow",
        window_ns=200 * MS, ant_max_packet_size=256,
        ant_max_rate_mbps=2.0)
    host.add_nf(detector, ring_slots=4096)
    host.install_rule(FlowTableEntry(
        scope="eth0", match=FlowMatch.any(),
        actions=(ToService("ant"),)))
    host.install_rule(FlowTableEntry(
        scope="ant", match=FlowMatch.any(),
        actions=(ToPort("slow"), ToPort("fast"))))

    flow1 = FiveTuple("10.0.1.1", "10.0.2.1", 6, 1001, 80)
    flow2 = FiveTuple("10.0.1.2", "10.0.2.2", 6, 1002, 80)
    gen = PktGen(sim, host, measure_ports=("slow", "fast"),
                 window_ns=500 * MS)
    lat1 = gen.track_flow(flow1)
    lat2 = gen.track_flow(flow2)
    # Flow 1: small packets, initially fast (elephant-rate).  Poisson
    # arrivals so the slow link sees real queueing at high utilization
    # (phase 1 runs the slow link at ~90 %).
    spec1 = gen.add_flow(FlowSpec(flow=flow1, rate_mbps=16.0,
                                  packet_size=64, pacing="poisson"))
    # Flow 2: large packets, constant rate.
    gen.add_flow(FlowSpec(flow=flow2, rate_mbps=20.0, packet_size=1024,
                          pacing="poisson"))

    timeline = {}

    def snapshot(name):
        def take():
            timeline[name] = {
                "flow1_us": (lat1.mean_us() if len(lat1) else None),
                "flow2_us": (lat2.mean_us() if len(lat2) else None),
            }
            lat1._samples.clear()
            lat2._samples.clear()
        return take

    sim.schedule(PHASE1_END, snapshot("phase1 (both elephants)"))
    sim.schedule(PHASE1_END, lambda: setattr(spec1, "rate_mbps", 0.8))
    sim.schedule(PHASE2_END, snapshot("phase2 (flow1 ant)"))
    sim.schedule(PHASE2_END, lambda: setattr(spec1, "rate_mbps", 16.0))
    sim.schedule(RUN_END - 1, snapshot("phase3 (flow1 elephant again)"))
    sim.run(until=RUN_END)
    return detector, timeline


def test_fig8_ant_flow_rerouting(report, benchmark):
    detector, timeline = benchmark.pedantic(run_fig8, iterations=1,
                                            rounds=1)
    phase1 = timeline["phase1 (both elephants)"]
    phase2 = timeline["phase2 (flow1 ant)"]
    phase3 = timeline["phase3 (flow1 elephant again)"]

    # Phase 2: flow 1 was rerouted to the fast link -> latency collapses.
    assert phase2["flow1_us"] < phase1["flow1_us"] / 3
    # Flow 2 improves too: less contention on the slow link.
    assert phase2["flow2_us"] < phase1["flow2_us"] * 0.9
    # Phase 3: flow 1 back to elephant -> latency rises again.
    assert phase3["flow1_us"] > phase2["flow1_us"] * 2
    # The detector reclassified at each phase change.
    assert detector.reclassifications >= 3

    columns = {"phase": list(timeline),
               "flow1_us": [timeline[k]["flow1_us"] for k in timeline],
               "flow2_us": [timeline[k]["flow2_us"] for k in timeline]}
    report("fig8_ant_flows", series_table(
        "Fig. 8 — mean RTT per phase (us); ant phase = 5s–10.5s "
        "(timeline scaled 1:10)", columns), metrics=columns)
