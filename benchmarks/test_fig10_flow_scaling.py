"""Figure 10: SDNFV scales by distributing control decisions.

Paper: new video flows arrive at a configurable rate; each is established
after two packets.  "The Controller quickly becomes the bottleneck when
the input rate exceeds 1000 new flows/sec.  On the other hand, the output
rate of SDNFV can linearly increase, and achieves a maximum output rate 9
times greater."

SDN baseline: the first two packets of every flow go to the controller
(500 µs service each → 1000 flows/s ceiling).  SDNFV: the detector and
policy engine run as local NFs with proactive rules; no controller on the
per-flow path.
"""

import pytest

from repro.baselines import SdnVideoSystem
from repro.control import SdnController
from repro.core import SdnfvApp, ServiceGraph
from repro.core.service_graph import EXIT
from repro.dataplane import NfvHost
from repro.metrics import series_table
from repro.nfs import PolicyEngine, VideoFlowDetector
from repro.sim import S, Simulator
from repro.workloads import FlowChurnWorkload

RATES = [500, 1000, 2000, 4000, 9000]
MEASURE_NS = 2 * S


def measure_sdn(rate: float) -> float:
    sim = Simulator()
    controller = SdnController(sim, service_time_ns=500_000,
                               propagation_ns=500_000)
    system = SdnVideoSystem(sim, controller)
    workload = FlowChurnWorkload(sim, system, new_flows_per_second=rate)
    sim.run(until=MEASURE_NS)
    return system.completed_flows / (MEASURE_NS / S)


def measure_sdnfv(rate: float) -> float:
    sim = Simulator()
    app = SdnfvApp(sim)
    host = NfvHost(sim, name="sdnfv0")
    app.register_host(host)
    host.add_nf(VideoFlowDetector("vd"), ring_slots=4096)
    host.add_nf(PolicyEngine("pe", detector_service="vd",
                             transcoder_service="tc",
                             exit_port="eth1"), ring_slots=4096)
    graph = ServiceGraph("video")
    graph.add_service("vd", read_only=True)
    graph.add_service("pe")
    graph.add_edge("vd", "pe", default=True)
    graph.add_edge("vd", EXIT)
    graph.add_edge("pe", EXIT, default=True)
    graph.set_entry("vd")
    app.deploy(graph, proactive=True)
    workload = FlowChurnWorkload(sim, host, new_flows_per_second=rate)
    sim.run(until=MEASURE_NS)
    return workload.completed_flows / (MEASURE_NS / S)


def test_fig10_output_flows_vs_new_flows(report, benchmark):
    def run():
        return ([measure_sdn(rate) for rate in RATES],
                [measure_sdnfv(rate) for rate in RATES])

    sdn, sdnfv = benchmark.pedantic(run, iterations=1, rounds=1)

    # SDN saturates near 1000 flows/s (2 × 500 µs controller work/flow).
    assert sdn[RATES.index(1000)] <= 1100
    assert sdn[-1] <= 1100
    # SDNFV keeps up with the offered rate across the sweep (linear).
    for rate, completed in zip(RATES, sdnfv):
        assert completed == pytest.approx(rate, rel=0.15)
    # Paper headline: ~9x higher max output rate.
    ratio = max(sdnfv) / max(sdn)
    assert ratio > 6.0

    columns = {"new_flows_per_s": RATES, "SDN": sdn, "SDNFV": sdnfv}
    report("fig10_flow_scaling", series_table(
        f"Fig. 10 — completed flows/s vs offered new flows/s "
        f"(SDNFV:SDN max ratio {ratio:.1f}x; paper: 9x)", columns),
        metrics=columns)
