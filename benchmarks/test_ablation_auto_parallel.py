"""Ablation: profile-driven auto-parallel deployment vs sequential.

The read-only fusion ablation (``test_ablation_parallel_chains``) only
covers chains the declared bit can fuse.  This one measures what the
action-profile analyzer adds: chains alternating compute NFs with
*writers* (DscpMarker), which legacy fusion cannot group at all.
``deploy(auto_parallel=True)`` synthesizes a hybrid layout — each
marker fuses with its compute neighbours, while consecutive markers
stay separated by their dscp write/write conflict — so latency grows
per *group*, not per NF.

The latency table is pure simulated time, so it is deterministic across
machines; the committed baseline
(``results/ablation_auto_parallel_baseline.json``) pins it exactly.
"""

from __future__ import annotations

import json
import pathlib

from repro.core import SdnfvApp, ServiceGraph
from repro.core.service_graph import EXIT
from repro.dataplane import NfvHost
from repro.metrics import series_table
from repro.net import FiveTuple
from repro.nfs import ComputeNf, DscpMarker
from repro.sim import MS, Simulator
from repro.workloads import FlowSpec, PktGen

LENGTHS = [2, 3, 4, 5, 6, 7, 8]
COMPUTE_NS = 20_000

BASELINE_PATH = (pathlib.Path(__file__).parent / "results"
                 / "ablation_auto_parallel_baseline.json")


def build(sim: Simulator, length: int, name: str):
    """Host + linear graph alternating ComputeNf and DscpMarker."""
    app = SdnfvApp(sim)
    host = NfvHost(sim, name=name)
    app.register_host(host)
    services: list[str] = []
    for i in range(length):
        if i % 2 == 0:
            host.add_nf(ComputeNf(f"c{i}", cost_ns=COMPUTE_NS))
            services.append(f"c{i}")
        else:
            marker = DscpMarker(f"m{i}", default_dscp=16 + i)
            # Per-instance cost: the class (and so its inferred
            # profile) is untouched; only this deployment is heavy.
            marker.per_packet_cost_ns = COMPUTE_NS
            host.add_nf(marker)
            services.append(f"m{i}")
    graph = ServiceGraph(f"chain{length}")
    for service in services:
        graph.add_service(service)
    for service, nxt in zip(services, services[1:]):
        graph.add_edge(service, nxt, default=True)
    graph.add_edge(services[-1], EXIT, default=True)
    graph.set_entry(services[0])
    return app, host, graph


def measure(length: int, auto: bool) -> float:
    sim = Simulator()
    app, host, graph = build(sim, length, f"len{length}-{auto}")
    app.deploy(graph, auto_parallel=auto)
    flow = FiveTuple("10.0.0.1", "10.0.0.2", 6, 1, 80)
    gen = PktGen(sim, host)
    gen.add_flow(FlowSpec(flow=flow, rate_mbps=100.0, packet_size=1000,
                          stop_ns=40 * MS))
    sim.run(until=80 * MS)
    assert gen.received > 100
    return gen.latency.mean_us()


def test_ablation_auto_parallel(report, benchmark):
    def run():
        sequential = [measure(length, auto=False) for length in LENGTHS]
        auto = [measure(length, auto=True) for length in LENGTHS]
        return sequential, auto

    sequential, auto = benchmark.pedantic(run, iterations=1, rounds=1)
    speedups = [seq / par for seq, par in zip(sequential, auto)]

    # The analyzer's win: writers fuse too, so every chain length gets a
    # measurable latency cut that legacy fusion cannot deliver at all.
    for length, speedup in zip(LENGTHS, speedups):
        assert speedup > 1.4, (length, speedup)
    # Sequential pays one compute per NF; auto pays one per group.
    assert sequential[-1] > auto[-1] + 3 * COMPUTE_NS / 1000

    # Cross-machine anchor: simulated time is deterministic, so the
    # whole table must match the committed baseline exactly.
    baseline = json.loads(BASELINE_PATH.read_text())
    measured = {"chain_length": LENGTHS,
                "sequential_us": [round(v, 3) for v in sequential],
                "auto_parallel_us": [round(v, 3) for v in auto]}
    assert measured == {key: baseline["metrics"][key] for key in measured}

    columns = {**measured,
               "speedup": [round(s, 3) for s in speedups]}
    report("ablation_auto_parallel", series_table(
        "Ablation — mean RTT (us): sequential vs auto-parallel deploy, "
        "alternating 20 us compute / DSCP-marker chains", columns),
        # Scalar headline ratios so tools/bench_trend.py picks them up
        # (its flattener only reads scalar leaves, not series columns).
        metrics={**columns,
                 "speedup_min": round(min(speedups), 3),
                 "speedup_len8": round(speedups[-1], 3)},
        config={"compute_ns": COMPUTE_NS, "rate_mbps": 100.0,
                "packet_size": 1000, "lengths": LENGTHS})
