"""Ablation: what the distributed control plane buys (Figs. 1 and 10).

Three measurements, one JSON artifact
(``results/ablation_control_plane.json``):

- **Miss rate.** The same 64-flow workload with and without proactive
  pre-population: the reactive-only run sets up every flow through the
  controller slow path (miss rate 1.0); with the cover pre-installed,
  only the 4 long-tail flows miss (< 10%).
- **Flow-setup throughput.** 600 distinct flow setups thrown at the
  plane at once, shards ∈ {1, 2, 4}: aggregate setup throughput must
  scale ≥3× from one shard to four.
- **Outage isolation.** One shard dark: flows owned by the live shard
  still set up at the idle RTT; with ring failover even the dead
  shard's flow space keeps being served.
"""

from repro.control import ControlPlane
from repro.core import SdnfvApp, ServiceGraph
from repro.core.service_graph import EXIT
from repro.dataplane import FlowTableEntry, NfvHost, ToPort
from repro.net import FiveTuple, FlowMatch, Packet
from repro.nfs import NoOpNf
from repro.sim import MS, Simulator

COVERED_FLOWS = 60
TAIL_FLOWS = 4
SETUP_FLOWS = 600
SHARD_COUNTS = (1, 2, 4)
MIN_SETUP_SCALING = 3.0
MAX_MISS_RATE = 0.10


def _flows(count: int, protocol: int = 6, base_port: int = 1) -> list:
    return [FiveTuple("10.0.0.1", "10.0.0.2", protocol,
                      base_port + index, 80)
            for index in range(count)]


def _passthrough_graph() -> ServiceGraph:
    graph = ServiceGraph("ablation")
    graph.add_service("fw", read_only=True)
    graph.add_edge("fw", EXIT, default=True)
    graph.set_entry("fw")
    return graph


def run_miss_rate(proactive: bool) -> dict:
    """One host, 64 flows: 60 covered by per-flow deployments (proactive
    or not), 4 long-tail flows always reactive."""
    sim = Simulator()
    plane = ControlPlane(sim, shards=2)
    host = NfvHost(sim, name="h0", controller=plane)
    app = SdnfvApp(sim, controller=plane)
    app.register_host(host)
    host.add_nf(NoOpNf("fw"), ring_slots=256)
    graph = _passthrough_graph()
    covered = _flows(COVERED_FLOWS, protocol=6)
    tail = _flows(TAIL_FLOWS, protocol=17, base_port=5000)
    for flow in covered:
        app.deploy(graph, match=FlowMatch.exact(flow),
                   proactive=proactive)
    for flow in tail:
        app.deploy(graph, match=FlowMatch.exact(flow), proactive=False)
    # Proactive pushes ride the controller channel (propagation both
    # ways plus 60 serialized service slots); let the cover land
    # before offering traffic.
    sim.run(until=80 * MS)
    for flow in covered + tail:
        host.inject("eth0", Packet(flow=flow, size=128))
    sim.run(until=400 * MS)
    stats = host.stats
    return {
        "proactive": proactive,
        "flow_setups": stats.flow_setups(),
        "proactive_hits": stats.proactive_hits,
        "reactive_hits": stats.reactive_hits,
        "reactive_misses": stats.reactive_misses,
        "miss_rate": stats.reactive_miss_rate(),
    }


class _StaticApp:
    def rules_for(self, host, scope, flow):
        return [FlowTableEntry(scope=scope, match=FlowMatch.exact(flow),
                               actions=(ToPort("eth1"),))]


def run_setup_throughput(shards: int) -> dict:
    """Pure controller saturation: 600 distinct setups at t=0."""
    sim = Simulator()
    plane = ControlPlane(sim, shards=shards, propagation_ns=0,
                         northbound=_StaticApp())
    replies = [plane.flow_request("h0", "eth0", flow)
               for flow in _flows(SETUP_FLOWS)]
    for reply in replies:
        sim.run(reply)
    makespan_ns = sim.now
    return {
        "shards": shards,
        "makespan_ms": makespan_ns / MS,
        "setups_per_second": SETUP_FLOWS / (makespan_ns / 1e9),
    }


def run_outage_isolation(failover: bool) -> dict:
    """Shard 0 dark for 50 ms; one flow owned by each shard arrives
    1 ms in.  Reports each flow's setup latency."""
    sim = Simulator()
    plane = ControlPlane(sim, shards=2, northbound=_StaticApp(),
                         failover=failover)
    by_owner = {}
    port = 1
    while len(by_owner) < 2:
        flow = FiveTuple("10.0.0.1", "10.0.0.2", 6, port, 80)
        by_owner.setdefault(plane.owner_of(flow), flow)
        port += 1
    plane.outage(50 * MS, shard=0)
    sim.run(until=1 * MS)
    latency = {}
    for owner, flow in sorted(by_owner.items()):
        start = sim.now
        reply = plane.flow_request("h0", "eth0", flow)
        sim.run(reply)
        latency[owner] = sim.now - start
    return {
        "failover": failover,
        "idle_rtt_ms": plane.idle_lookup_ns / MS,
        "latency_ms": {owner: value / MS
                       for owner, value in latency.items()},
        "failovers": plane.stats.failovers,
        "latency_ns": latency,
    }


def test_control_plane_ablation(report):
    reactive = run_miss_rate(proactive=False)
    proactive = run_miss_rate(proactive=True)
    setups = {shards: run_setup_throughput(shards)
              for shards in SHARD_COUNTS}
    scaling = (setups[4]["setups_per_second"]
               / setups[1]["setups_per_second"])
    pinned = run_outage_isolation(failover=False)
    absorbed = run_outage_isolation(failover=True)

    lines = [
        "control-plane ablation",
        f"miss rate: reactive-only {reactive['miss_rate']:.3f} "
        f"({reactive['reactive_misses']}/{reactive['flow_setups']}), "
        f"proactive {proactive['miss_rate']:.3f} "
        f"({proactive['reactive_misses']}/{proactive['flow_setups']})",
        f"{'shards':>6} {'makespan_ms':>12} {'setups/s':>10}",
    ]
    for shards in SHARD_COUNTS:
        run = setups[shards]
        lines.append(f"{shards:>6} {run['makespan_ms']:>12.2f} "
                     f"{run['setups_per_second']:>10.0f}")
    lines.append(f"setup-throughput scaling 1->4 shards: {scaling:.2f}x")
    lines.append(
        "outage isolation (shard 0 dark): live shard "
        f"{pinned['latency_ms'][1]:.1f} ms, dead shard "
        f"{pinned['latency_ms'][0]:.1f} ms pinned / "
        f"{absorbed['latency_ms'][0]:.1f} ms with failover")
    report("ablation_control_plane", "\n".join(lines),
           metrics={"miss_rate": {"reactive": reactive,
                                  "proactive": proactive},
                    "setup_throughput": {str(shards): setups[shards]
                                         for shards in SHARD_COUNTS},
                    "outage_isolation": {"pinned": pinned,
                                         "failover": absorbed},
                    "setup_scaling_1_to_4": scaling},
           config={"covered_flows": COVERED_FLOWS,
                   "tail_flows": TAIL_FLOWS,
                   "setup_flows": SETUP_FLOWS,
                   "shard_counts": list(SHARD_COUNTS),
                   "min_setup_scaling": MIN_SETUP_SCALING,
                   "max_miss_rate": MAX_MISS_RATE})

    # The tentpole's acceptance gates.
    assert reactive["miss_rate"] == 1.0
    assert proactive["miss_rate"] < MAX_MISS_RATE
    assert proactive["proactive_hits"] == COVERED_FLOWS
    assert scaling >= MIN_SETUP_SCALING, (
        f"setup throughput only scaled {scaling:.2f}x from 1 to 4 "
        f"shards (need {MIN_SETUP_SCALING}x)")
    # Outage isolation: the live shard's flow space never saw the
    # outage, and failover kept even the dead shard's space served.
    assert pinned["latency_ns"][1] == 31 * MS  # idle RTT, unaffected
    assert pinned["latency_ns"][0] > 40 * MS  # waited out the outage
    assert absorbed["latency_ns"][0] == 31 * MS
    assert absorbed["failovers"] > 0
