"""Figure 7: throughput vs packet size for chain length / parallelism.

Paper (one CPU socket, 1 RX + 2 TX threads): plain DPDK forwarding holds
line rate for most sizes; through VMs, "SDNFV can achieve close to 5Gbps
for smaller packet sizes when using one socket and can achieve 10Gbps
with larger packet sizes".

The generator offers line rate (10 Gbps); the achieved receive rate is
bounded by the slowest per-packet stage for small packets and by the wire
for large ones.
"""

import pytest

from repro.baselines import make_dpdk_forwarder
from repro.dataplane import NfvHost
from repro.metrics import series_table
from repro.net import FiveTuple
from repro.nfs import NoOpNf
from repro.sim import MS, Simulator
from repro.workloads import FlowSpec, PktGen

from tests.conftest import install_chain

SIZES = [64, 128, 256, 512, 1024]
CONFIGS = ["0VM (dpdk)", "1VM", "2VM (parallel)", "2VM (sequential)"]
WINDOW_NS = 3 * MS


def measure(config: str, size: int) -> float:
    sim = Simulator()
    if config == "0VM (dpdk)":
        host = make_dpdk_forwarder(sim)
    else:
        vms = int(config[0])
        host = NfvHost(sim, name=config)
        services = [f"noop{i}" for i in range(vms)]
        for service in services:
            host.add_nf(NoOpNf(service), ring_slots=1024)
        install_chain(host, services)
        if "parallel" in config and vms > 1:
            host.manager.register_parallel_chain(services)
    flow = FiveTuple("10.0.0.1", "10.0.0.2", 6, 1234, 80)
    gen = PktGen(sim, host, window_ns=MS)
    # Offer at line rate: inter-packet gap = serialization time at 10 G.
    offered_mbps = 10_000.0
    gen.add_flow(FlowSpec(flow=flow, rate_mbps=offered_mbps,
                          packet_size=size, stop_ns=2 * WINDOW_NS))
    sim.run(until=2 * WINDOW_NS)
    # Steady-state receive rate while the offer is active; the NIC's
    # bounded RX ring drops the excess, exactly like the testbed.
    return gen.rx_meter.mean_gbps(WINDOW_NS, 2 * WINDOW_NS)


def test_fig7_throughput_vs_packet_size(report, benchmark):
    results = benchmark.pedantic(
        lambda: {config: [measure(config, size) for size in SIZES]
                 for config in CONFIGS},
        iterations=1, rounds=1)

    dpdk = results["0VM (dpdk)"]
    one_vm = results["1VM"]
    par = results["2VM (parallel)"]
    seq = results["2VM (sequential)"]

    # DPDK holds ~line rate for most packet sizes.
    assert dpdk[SIZES.index(256)] == pytest.approx(10.0, rel=0.1)
    assert dpdk[SIZES.index(1024)] == pytest.approx(10.0, rel=0.1)
    # VM configs: ~5 Gbps at 64 B, ~line rate at 1024 B.
    assert 3.5 <= one_vm[0] <= 7.0
    assert one_vm[-1] == pytest.approx(10.0, rel=0.1)
    assert 3.0 <= seq[0] <= 7.0
    assert seq[-1] == pytest.approx(10.0, rel=0.1)
    # Ordering at small sizes: dpdk >= 1VM >= chains.
    assert dpdk[0] > one_vm[0]
    assert one_vm[0] >= par[0] - 0.5
    assert one_vm[0] >= seq[0] - 0.5
    # Throughput grows with packet size for every configuration.
    for series in results.values():
        assert all(b >= a - 0.2 for a, b in zip(series, series[1:]))

    columns = {"size_B": SIZES}
    for config in CONFIGS:
        columns[config.replace(" ", "_")] = results[config]
    report("fig7_throughput", series_table(
        "Fig. 7 — achieved throughput (Gbps) vs packet size, one socket",
        columns), metrics=columns)
